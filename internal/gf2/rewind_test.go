package gf2

import (
	"fmt"
	"testing"

	"mcf0/internal/bitvec"
	"mcf0/internal/stats"
)

// rewindWidths straddle every word-boundary shape the elimination kernels
// special-case.
var rewindWidths = []int{1, 7, 31, 63, 64, 65, 127, 128, 130}

// systemsEqual compares the observable state of two systems: consistency,
// rank, and the full echelon basis (rows and right-hand sides).
func systemsEqual(t *testing.T, got, want *System) {
	t.Helper()
	if got.Consistent() != want.Consistent() {
		t.Fatalf("consistency mismatch: got %v want %v", got.Consistent(), want.Consistent())
	}
	if got.Rank() != want.Rank() {
		t.Fatalf("rank mismatch: got %d want %d", got.Rank(), want.Rank())
	}
	ge, we := got.Equations(), want.Equations()
	for i := range ge {
		if !ge[i].A.Equal(we[i].A) || ge[i].RHS != we[i].RHS {
			t.Fatalf("basis row %d mismatch:\n got %v = %v\nwant %v = %v",
				i, ge[i].A, ge[i].RHS, we[i].A, we[i].RHS)
		}
	}
}

// TestQuickMarkRewindVsClone drives random interleavings of Add,
// AddPrereduced, Mark, and Rewind, comparing the rewound system against a
// Clone snapshot taken at the matching Mark. Rows are drawn to hit every
// insertion outcome: fresh pivots, dependent rows (zero residual), and
// contradictions (inconsistency set and later rewound away).
func TestQuickMarkRewindVsClone(t *testing.T) {
	for _, w := range rewindWidths {
		w := w
		t.Run(fmt.Sprintf("w=%d", w), func(t *testing.T) {
			t.Parallel()
			for seed := uint64(0); seed < 30; seed++ {
				rng := stats.NewRNG(0x7e317d<<8 ^ seed<<4 ^ uint64(w))
				sys := NewSystem(w)
				type snap struct {
					cp  Checkpoint
					ref *System
				}
				stack := []snap{{sys.Mark(), sys.Clone()}}
				var added []bitvec.BitVec
				scratch := bitvec.New(w)
				for step := 0; step < 80; step++ {
					switch rng.Intn(6) {
					case 0, 1: // fresh random row
						a := bitvec.Random(w, rng.Uint64)
						added = append(added, a)
						sys.Add(a, rng.Bool())
					case 2: // replay an earlier row, possibly contradicting
						if len(added) == 0 {
							continue
						}
						sys.Add(added[rng.Intn(len(added))], rng.Bool())
					case 3: // prereduced insertion via ResidualInto
						a := bitvec.Random(w, rng.Uint64)
						added = append(added, a)
						rr := sys.ResidualInto(a, rng.Bool(), scratch)
						sys.AddPrereduced(scratch, rr)
					case 4: // push a checkpoint + reference snapshot
						stack = append(stack, snap{sys.Mark(), sys.Clone()})
					case 5: // rewind to a random earlier checkpoint
						i := rng.Intn(len(stack))
						sys.Rewind(stack[i].cp)
						stack = stack[:i+1]
						systemsEqual(t, sys, stack[i].ref)
					}
				}
				sys.Rewind(stack[0].cp)
				systemsEqual(t, sys, stack[0].ref)
				if sys.Rank() != 0 || !sys.Consistent() {
					t.Fatalf("full rewind left rank %d consistent %v", sys.Rank(), sys.Consistent())
				}
				// The rewound system must still eliminate correctly: re-add
				// everything and compare against a from-scratch build.
				fresh := NewSystem(w)
				for i, a := range added {
					rhs := i%2 == 0
					sys.Add(a, rhs)
					fresh.Add(a, rhs)
				}
				systemsEqual(t, sys, fresh)
			}
		})
	}
}

// TestRewindStaleCheckpointPanics pins the misuse contract: rewinding to a
// checkpoint that was invalidated by an earlier deeper Rewind panics —
// both while the system is still shallower than the checkpoint and, the
// insidious case, after it has re-grown past the checkpoint's depth with
// different rows (caught by the insertion-serial check, not silently
// splicing out the wrong pivots).
func TestRewindStaleCheckpointPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: Rewind to a stale checkpoint did not panic", name)
			}
		}()
		f()
	}
	rng := stats.NewRNG(99)
	sys := NewSystem(16)
	base := sys.Mark()
	sys.Add(bitvec.Random(16, rng.Uint64), true)
	stale := sys.Mark()
	sys.Add(bitvec.Random(16, rng.Uint64), false)
	sys.Rewind(base)
	mustPanic("shallower", func() { sys.Rewind(stale) })
	// Re-grow past the stale depth: the depth check alone would pass, the
	// serial check must not.
	for i := 0; i < 4; i++ {
		sys.Add(bitvec.Random(16, rng.Uint64), rng.Bool())
	}
	mustPanic("re-grown", func() { sys.Rewind(stale) })
	// A checkpoint at the same depth taken after the re-growth is valid.
	sys.Rewind(Checkpoint{pivots: stale.pivots, serial: sys.serial, inconsistent: false})
	if sys.Rank() != stale.pivots {
		t.Fatalf("valid same-depth rewind left rank %d", sys.Rank())
	}
}

// cloneSearcher is the pre-rewind reference implementation of the image
// search: every prefix query clones the base system and replays the prefix,
// exactly as ImageSearcher worked before the rewind engine. The rewindable
// searcher must be bit-identical to it.
type cloneSearcher struct {
	a    *Matrix
	b    bitvec.BitVec
	base *System
}

func (s *cloneSearcher) lexMinWithPrefix(prefix []bool) (bitvec.BitVec, bool) {
	m := s.a.Rows()
	sys := s.base.Clone()
	if !sys.Consistent() {
		return bitvec.BitVec{}, false
	}
	y := bitvec.New(m)
	scratch := bitvec.New(s.a.Cols())
	for i, bit := range prefix {
		sys.Add(s.a.Row(i), bit != s.b.Get(i))
		if !sys.Consistent() {
			return bitvec.BitVec{}, false
		}
		if bit {
			y.Set(i, true)
		}
	}
	for i := len(prefix); i < m; i++ {
		rr := sys.ResidualInto(s.a.Row(i), s.b.Get(i), scratch)
		if scratch.IsZero() {
			if rr {
				y.Set(i, true)
			}
			continue
		}
		sys.AddPrereduced(scratch, rr)
	}
	return y, true
}

func (s *cloneSearcher) kMin(k int) []bitvec.BitVec {
	var out []bitvec.BitVec
	cur, ok := s.lexMinWithPrefix(nil)
	for ok && len(out) < k {
		out = append(out, cur)
		// Successor walk, clone-and-replay per probe.
		m := s.a.Rows()
		var next bitvec.BitVec
		found := false
		for r := m - 1; r >= 0 && !found; r-- {
			if cur.Get(r) {
				continue
			}
			prefix := make([]bool, r+1)
			for i := 0; i < r; i++ {
				prefix[i] = cur.Get(i)
			}
			prefix[r] = true
			next, found = s.lexMinWithPrefix(prefix)
		}
		cur, ok = next, found
	}
	return out
}

// TestRewindSearcherVsCloneReference is the fixed-seed differential: at
// widths straddling word boundaries, KMin, LexMinWithPrefix, Contains, and
// EnumerateImage on the rewindable searcher must be bit-identical to the
// clone-and-replay reference over the same base system.
func TestRewindSearcherVsCloneReference(t *testing.T) {
	for _, tc := range []struct{ n, m int }{
		{3, 5}, {6, 10}, {8, 24}, {5, 63}, {5, 64}, {6, 65}, {4, 130},
	} {
		tc := tc
		t.Run(fmt.Sprintf("n=%d/m=%d", tc.n, tc.m), func(t *testing.T) {
			t.Parallel()
			for seed := uint64(1); seed <= 12; seed++ {
				rng := stats.NewRNG(0x5ea7c4<<8 ^ seed<<5 ^ uint64(tc.m))
				a := RandomMatrix(tc.m, tc.n, rng.Uint64)
				b := bitvec.Random(tc.m, rng.Uint64)
				var refBase, base *System
				if rng.Bool() {
					refBase, base = NewSystem(tc.n), NewSystem(tc.n)
					for i, k := 0, rng.Intn(3); i < k; i++ {
						row := bitvec.Random(tc.n, rng.Uint64)
						rhs := rng.Bool()
						refBase.Add(row, rhs)
						base.Add(row, rhs)
					}
				}
				ref := &cloneSearcher{a: a, b: b, base: refBase}
				if ref.base == nil {
					ref.base = NewSystem(tc.n)
				}
				s := NewImageSearcher(a, b, base)

				k := 1 + rng.Intn(10)
				want := ref.kMin(k)
				got := s.KMin(k)
				if len(got) != len(want) {
					t.Fatalf("seed %d: KMin(%d) sizes %d vs %d", seed, k, len(got), len(want))
				}
				for i := range got {
					if !got[i].Equal(want[i]) {
						t.Fatalf("seed %d: KMin[%d] = %v, want %v", seed, i, got[i], want[i])
					}
				}
				// Random prefixes, interleaved with Contains probes so the
				// committed state keeps shifting.
				for probe := 0; probe < 15; probe++ {
					plen := rng.Intn(tc.m + 1)
					prefix := make([]bool, plen)
					for i := range prefix {
						prefix[i] = rng.Bool()
					}
					wv, wok := ref.lexMinWithPrefix(prefix)
					gv, gok := s.LexMinWithPrefix(prefix)
					if gok != wok {
						t.Fatalf("seed %d: prefix feasibility %v vs %v", seed, gok, wok)
					}
					if wok && !gv.Equal(wv) {
						t.Fatalf("seed %d: LexMinWithPrefix %v, want %v", seed, gv, wv)
					}
					y := bitvec.Random(tc.m, rng.Uint64)
					if len(want) > 0 && rng.Bool() {
						y = want[rng.Intn(len(want))] // known member
					}
					_, wantIn := ref.lexMinWithPrefix(toBits(y))
					if s.Contains(y) != wantIn {
						t.Fatalf("seed %d: Contains(%v) = %v, want %v", seed, y, s.Contains(y), wantIn)
					}
				}
				// EnumerateImage must visit the same elements as KMin, with
				// the scratch-vector contract.
				var enum []bitvec.BitVec
				s.EnumerateImage(k, func(v bitvec.BitVec) bool {
					enum = append(enum, v.Clone())
					return true
				})
				if len(enum) != len(want) {
					t.Fatalf("seed %d: EnumerateImage visited %d, want %d", seed, len(enum), len(want))
				}
				for i := range enum {
					if !enum[i].Equal(want[i]) {
						t.Fatalf("seed %d: EnumerateImage[%d] = %v, want %v", seed, i, enum[i], want[i])
					}
				}
			}
		})
	}
}

func toBits(y bitvec.BitVec) []bool {
	out := make([]bool, y.Len())
	for i := range out {
		out[i] = y.Get(i)
	}
	return out
}
