package gf2

import (
	"math/rand"
	"sort"
	"testing"

	"mcf0/internal/bitvec"
)

func randVec(n int, rng *rand.Rand) bitvec.BitVec {
	return bitvec.Random(n, rng.Uint64)
}

func TestMulVecLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		rows, cols := 1+rng.Intn(20), 1+rng.Intn(20)
		m := RandomMatrix(rows, cols, rng.Uint64)
		x, y := randVec(cols, rng), randVec(cols, rng)
		// M(x+y) = Mx + My
		if !m.MulVec(x.Xor(y)).Equal(m.MulVec(x).Xor(m.MulVec(y))) {
			t.Fatal("MulVec not linear")
		}
	}
}

func TestSystemAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		cols := 1 + rng.Intn(10)
		rows := rng.Intn(12)
		m := RandomMatrix(rows, cols, rng.Uint64)
		rhs := randVec(rows, rng)
		sys := NewSystem(cols)
		for i := 0; i < rows; i++ {
			sys.Add(m.Row(i), rhs.Get(i))
		}
		// Brute force: count x with Mx = rhs.
		want := 0
		var witness bitvec.BitVec
		for v := uint64(0); v < 1<<uint(cols); v++ {
			x := bitvec.FromUint64(v, cols)
			if m.MulVec(x).Equal(rhs) {
				if want == 0 {
					witness = x
				}
				want++
			}
		}
		if sys.Consistent() != (want > 0) {
			t.Fatalf("consistency mismatch: sys=%v brute=%d", sys.Consistent(), want)
		}
		if want == 0 {
			continue
		}
		if got := sys.SolutionCountCapped(1 << 20); got != want {
			t.Fatalf("solution count: got %d want %d (cols=%d rows=%d)", got, want, cols, rows)
		}
		x0, ok := sys.Solve()
		if !ok || !m.MulVec(x0).Equal(rhs) {
			t.Fatalf("Solve returned non-solution %v (witness %v)", x0, witness)
		}
		// Every null basis vector must map to zero.
		for _, nb := range sys.NullBasis() {
			if !m.MulVec(nb).IsZero() {
				t.Fatal("null basis vector not in kernel")
			}
		}
		// Enumeration must yield exactly the solution set, no duplicates.
		seen := map[string]bool{}
		sys.EnumerateSolutions(-1, func(x bitvec.BitVec) bool {
			if !m.MulVec(x).Equal(rhs) {
				t.Fatal("enumerated non-solution")
			}
			if seen[x.Key()] {
				t.Fatal("duplicate solution enumerated")
			}
			seen[x.Key()] = true
			return true
		})
		if len(seen) != want {
			t.Fatalf("enumerated %d solutions, want %d", len(seen), want)
		}
	}
}

func TestEnumerateLimit(t *testing.T) {
	sys := NewSystem(10) // unconstrained: 1024 solutions
	count := 0
	sys.EnumerateSolutions(17, func(bitvec.BitVec) bool { count++; return true })
	if count != 17 {
		t.Fatalf("limit ignored: visited %d", count)
	}
	count = 0
	sys.EnumerateSolutions(-1, func(bitvec.BitVec) bool { count++; return count < 5 })
	if count != 5 {
		t.Fatalf("early stop ignored: visited %d", count)
	}
}

func TestRankMatchesBruteImageSize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		rows, cols := 1+rng.Intn(8), 1+rng.Intn(8)
		m := RandomMatrix(rows, cols, rng.Uint64)
		img := map[string]bool{}
		for v := uint64(0); v < 1<<uint(cols); v++ {
			img[m.MulVec(bitvec.FromUint64(v, cols)).Key()] = true
		}
		if got, want := 1<<uint(m.Rank()), len(img); got != want {
			t.Fatalf("2^rank=%d but image size %d", got, want)
		}
	}
}

// bruteImage computes sorted image {Ax+b : x sat cons} exhaustively.
func bruteImage(a *Matrix, b bitvec.BitVec, cons *System) []bitvec.BitVec {
	seen := map[string]bitvec.BitVec{}
	n := a.Cols()
	for v := uint64(0); v < 1<<uint(n); v++ {
		x := bitvec.FromUint64(v, n)
		if cons != nil {
			ok := true
			res, rr := cons.Residual(x, false)
			_ = res
			_ = rr
			// check constraints by substitution instead: every pivot row
			// of cons must hold.
			ok = consHolds(cons, x)
			if !ok {
				continue
			}
		}
		y := a.MulVec(x).Xor(b)
		seen[y.Key()] = y
	}
	out := make([]bitvec.BitVec, 0, len(seen))
	for _, y := range seen {
		out = append(out, y)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

func consHolds(cons *System, x bitvec.BitVec) bool {
	if !cons.Consistent() {
		return false
	}
	for _, p := range cons.pivots {
		if p.a.Dot(x) != p.rhs {
			return false
		}
	}
	return true
}

func TestImageSearcherKMinAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		cols := 1 + rng.Intn(8)
		rows := 1 + rng.Intn(10)
		a := RandomMatrix(rows, cols, rng.Uint64)
		b := randVec(rows, rng)
		var cons *System
		if rng.Intn(2) == 0 {
			cons = NewSystem(cols)
			for i, k := 0, rng.Intn(3); i < k; i++ {
				cons.Add(randVec(cols, rng), rng.Intn(2) == 0)
			}
		}
		want := bruteImage(a, b, cons)
		s := NewImageSearcher(a, b, cons)
		if s.Empty() != (len(want) == 0 && cons != nil && !cons.Consistent()) {
			// Empty() only reflects constraint inconsistency; image of a
			// consistent system is never empty.
			if s.Empty() && len(want) > 0 {
				t.Fatal("searcher claims empty image but brute force found elements")
			}
		}
		k := 1 + rng.Intn(10)
		got := s.KMin(k)
		wantK := want
		if len(wantK) > k {
			wantK = wantK[:k]
		}
		if len(got) != len(wantK) {
			t.Fatalf("KMin(%d) returned %d elements, want %d", k, len(got), len(wantK))
		}
		for i := range got {
			if !got[i].Equal(wantK[i]) {
				t.Fatalf("KMin[%d] = %v, want %v", i, got[i], wantK[i])
			}
		}
		// Contains must agree with membership for a few probes.
		for probe := 0; probe < 10; probe++ {
			y := randVec(rows, rng)
			inBrute := false
			for _, w := range want {
				if w.Equal(y) {
					inBrute = true
					break
				}
			}
			if s.Contains(y) != inBrute {
				t.Fatalf("Contains(%v) = %v, brute = %v", y, s.Contains(y), inBrute)
			}
		}
	}
}

func TestImageSearcherPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		cols := 1 + rng.Intn(6)
		rows := 2 + rng.Intn(8)
		a := RandomMatrix(rows, cols, rng.Uint64)
		b := randVec(rows, rng)
		s := NewImageSearcher(a, b, nil)
		img := bruteImage(a, b, nil)
		plen := rng.Intn(rows + 1)
		prefix := make([]bool, plen)
		for i := range prefix {
			prefix[i] = rng.Intn(2) == 0
		}
		var want bitvec.BitVec
		found := false
		for _, y := range img {
			match := true
			for i, p := range prefix {
				if y.Get(i) != p {
					match = false
					break
				}
			}
			if match {
				want, found = y, true
				break
			}
		}
		got, ok := s.LexMinWithPrefix(prefix)
		if ok != found {
			t.Fatalf("prefix feasibility mismatch: got %v want %v", ok, found)
		}
		if found && !got.Equal(want) {
			t.Fatalf("LexMinWithPrefix = %v, want %v", got, want)
		}
	}
}

func TestSelectColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := RandomMatrix(5, 8, rng.Uint64)
	keep := []bool{true, false, true, true, false, false, true, false}
	s := m.SelectColumns(keep)
	if s.Cols() != 4 || s.Rows() != 5 {
		t.Fatalf("shape %dx%d", s.Rows(), s.Cols())
	}
	for i := 0; i < 5; i++ {
		j := 0
		for c := 0; c < 8; c++ {
			if keep[c] {
				if s.Row(i).Get(j) != m.Row(i).Get(c) {
					t.Fatal("column selection scrambled entries")
				}
				j++
			}
		}
	}
}

func TestInconsistentSystem(t *testing.T) {
	sys := NewSystem(3)
	v := bitvec.FromString("101")
	sys.Add(v, false)
	sys.Add(v, true) // contradiction
	if sys.Consistent() {
		t.Fatal("contradictory system reported consistent")
	}
	if _, ok := sys.Solve(); ok {
		t.Fatal("Solve succeeded on inconsistent system")
	}
	if sys.SolutionCountCapped(100) != 0 {
		t.Fatal("inconsistent system has nonzero count")
	}
	called := false
	sys.EnumerateSolutions(-1, func(bitvec.BitVec) bool { called = true; return true })
	if called {
		t.Fatal("enumeration visited solutions of inconsistent system")
	}
}
