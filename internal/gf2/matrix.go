// Package gf2 implements linear algebra over GF(2): matrices, incremental
// Gaussian elimination with right-hand sides, solution enumeration, and
// lexicographic search over affine images. These primitives implement the
// prefix-searching strategy of Propositions 2 and 4 of the paper.
//
// The kernels are word-parallel (64 matrix entries per machine operation)
// and the hot entry points have destination-passing variants (MulVecInto,
// System.ResidualInto) with the ownership contract of package bitvec: the
// caller allocates the destination once, the callee never retains it.
package gf2

import (
	"math/bits"

	"mcf0/internal/bitvec"
)

// Matrix is a dense boolean matrix stored row-wise. Matrices built by the
// slab constructors (NewSlabMatrix, RandomMatrix, SelectColumns) keep their
// rows in one contiguous word array, which MulVecInto streams over without
// a per-row pointer chase.
type Matrix struct {
	rows []bitvec.BitVec
	cols int
	// flat is the contiguous backing array (stride words per row) when the
	// matrix was slab-built; nil otherwise. AddRow invalidates it.
	flat   []uint64
	stride int
}

// NewMatrix returns an empty matrix with the given number of columns.
func NewMatrix(cols int) *Matrix {
	if cols < 0 {
		panic("gf2: negative column count")
	}
	return &Matrix{cols: cols}
}

// FromRows wraps prebuilt rows (not copied) as a matrix. Every row must
// already have width cols.
func FromRows(cols int, rows []bitvec.BitVec) *Matrix {
	for _, r := range rows {
		if r.Len() != cols {
			panic("gf2: row width mismatch")
		}
	}
	return &Matrix{cols: cols, rows: rows}
}

// NewSlabMatrix returns an all-zero rows×cols matrix with contiguous row
// storage, along with its row vectors for initialization. The rows alias
// the matrix storage; initialize them before use and do not resize.
func NewSlabMatrix(rows, cols int) (*Matrix, []bitvec.BitVec) {
	if cols < 0 {
		panic("gf2: negative column count")
	}
	rs, flat := bitvec.NewSlabWords(cols, rows)
	m := &Matrix{cols: cols, rows: rs, flat: flat, stride: (cols + 63) / 64}
	return m, rs
}

// RandomMatrix returns a rows×cols matrix with i.i.d. uniform entries drawn
// from next, using a single backing allocation for the row storage.
func RandomMatrix(rows, cols int, next func() uint64) *Matrix {
	m, rs := NewSlabMatrix(rows, cols)
	for i := range rs {
		rs[i].FillRandom(next)
	}
	return m
}

// AddRow appends a row. The row width must equal the column count.
func (m *Matrix) AddRow(r bitvec.BitVec) {
	if r.Len() != m.cols {
		panic("gf2: row width mismatch")
	}
	m.rows = append(m.rows, r)
	m.flat = nil // rows are no longer contiguous
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return len(m.rows) }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Row returns row i (shared storage; callers must not mutate).
func (m *Matrix) Row(i int) bitvec.BitVec { return m.rows[i] }

// MulVec returns the matrix-vector product Mx over GF(2).
func (m *Matrix) MulVec(x bitvec.BitVec) bitvec.BitVec {
	y := bitvec.New(len(m.rows))
	m.MulVecInto(x, y)
	return y
}

// MulVecInto computes Mx into dst (width Rows()), allocation-free. dst is
// caller-owned scratch; it is fully overwritten.
func (m *Matrix) MulVecInto(x, dst bitvec.BitVec) {
	if x.Len() != m.cols {
		panic("gf2: vector width mismatch")
	}
	if dst.Len() != len(m.rows) {
		panic("gf2: destination width mismatch")
	}
	dw := dst.Words()
	for i := range dw {
		dw[i] = 0
	}
	xw := x.Words()
	if m.flat != nil {
		m.mulVecFlat(xw, dw)
		return
	}
	if len(xw) == 1 {
		x0 := xw[0]
		for i, r := range m.rows {
			par := uint64(bits.OnesCount64(r.Words()[0]&x0) & 1)
			dw[i/64] |= par << (uint(i) % 64)
		}
		return
	}
	for i, r := range m.rows {
		rw := r.Words()[:len(xw)]
		var fold uint64
		for k := range rw {
			fold ^= rw[k] & xw[k]
		}
		dw[i/64] |= uint64(bits.OnesCount64(fold)&1) << (uint(i) % 64)
	}
}

// mulVecFlat is the contiguous-storage product: one sequential pass over
// the backing array, no per-row pointer chase.
func (m *Matrix) mulVecFlat(xw, dw []uint64) {
	if m.stride == 1 {
		x0 := xw[0]
		flat := m.flat
		// Accumulate 64 output bits in a register before touching dw.
		for base, wi := 0, 0; base < len(flat); base, wi = base+64, wi+1 {
			lim := len(flat) - base
			if lim > 64 {
				lim = 64
			}
			chunk := flat[base : base+lim]
			var out uint64
			for j, w := range chunk {
				out |= uint64(bits.OnesCount64(w&x0)&1) << uint(j)
			}
			dw[wi] = out
		}
		return
	}
	stride := m.stride
	xs := xw[:stride]
	flat := m.flat
	if stride == 4 {
		// The ApproxMC/Minimum shapes (n up to 256) hit this stride; a
		// hand-unrolled body keeps the loop free of inner-loop control.
		x0, x1, x2, x3 := xs[0], xs[1], xs[2], xs[3]
		off := 0
		for i := 0; i < len(m.rows); i++ {
			fold := flat[off]&x0 ^ flat[off+1]&x1 ^ flat[off+2]&x2 ^ flat[off+3]&x3
			dw[i/64] |= uint64(bits.OnesCount64(fold)&1) << (uint(i) % 64)
			off += 4
		}
		return
	}
	for i := 0; i < len(m.rows); i++ {
		rw := flat[i*stride : (i+1)*stride]
		var fold uint64
		for k := range rw {
			fold ^= rw[k] & xs[k]
		}
		dw[i/64] |= uint64(bits.OnesCount64(fold)&1) << (uint(i) % 64)
	}
}

// SubMatrix returns a fresh matrix consisting of rows [0, k).
func (m *Matrix) SubMatrix(k int) *Matrix {
	if k > len(m.rows) {
		panic("gf2: submatrix rows out of range")
	}
	s := NewMatrix(m.cols)
	s.rows = append(s.rows, m.rows[:k]...)
	if m.flat != nil {
		// A row prefix stays contiguous in the backing array.
		s.flat = m.flat[:k*m.stride]
		s.stride = m.stride
	}
	return s
}

// SelectColumns returns a fresh matrix keeping only the columns for which
// keep[j] is true, in order. Used to restrict a hash matrix to the free
// variables of a DNF term. The compression runs per set bit of the keep
// mask (a software PEXT) rather than per column.
func (m *Matrix) SelectColumns(keep []bool) *Matrix {
	if len(keep) != m.cols {
		panic("gf2: keep mask width mismatch")
	}
	masks := make([]uint64, (m.cols+63)/64)
	w := 0
	for c, k := range keep {
		if k {
			masks[c/64] |= 1 << (uint(c) % 64)
			w++
		}
	}
	s, rows := NewSlabMatrix(len(m.rows), w)
	for ri, r := range m.rows {
		sw := r.Words()
		dw := rows[ri].Words()
		out := 0
		for wi, mask := range masks {
			src := sw[wi]
			for mk := mask; mk != 0; mk &= mk - 1 {
				if src&(mk&-mk) != 0 {
					dw[out/64] |= 1 << (uint(out) % 64)
				}
				out++
			}
		}
	}
	return s
}

// Rank computes the GF(2) rank.
func (m *Matrix) Rank() int {
	s := NewSystem(m.cols)
	for _, r := range m.rows {
		s.Add(r, false)
	}
	return s.Rank()
}
