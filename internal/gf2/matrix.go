// Package gf2 implements linear algebra over GF(2): matrices, incremental
// Gaussian elimination with right-hand sides, solution enumeration, and
// lexicographic search over affine images. These primitives implement the
// prefix-searching strategy of Propositions 2 and 4 of the paper.
package gf2

import "mcf0/internal/bitvec"

// Matrix is a dense boolean matrix stored row-wise.
type Matrix struct {
	rows []bitvec.BitVec
	cols int
}

// NewMatrix returns an empty matrix with the given number of columns.
func NewMatrix(cols int) *Matrix {
	if cols < 0 {
		panic("gf2: negative column count")
	}
	return &Matrix{cols: cols}
}

// RandomMatrix returns a rows×cols matrix with i.i.d. uniform entries drawn
// from next.
func RandomMatrix(rows, cols int, next func() uint64) *Matrix {
	m := NewMatrix(cols)
	for i := 0; i < rows; i++ {
		m.AddRow(bitvec.Random(cols, next))
	}
	return m
}

// AddRow appends a row. The row width must equal the column count.
func (m *Matrix) AddRow(r bitvec.BitVec) {
	if r.Len() != m.cols {
		panic("gf2: row width mismatch")
	}
	m.rows = append(m.rows, r)
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return len(m.rows) }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Row returns row i (shared storage; callers must not mutate).
func (m *Matrix) Row(i int) bitvec.BitVec { return m.rows[i] }

// MulVec returns the matrix-vector product Mx over GF(2).
func (m *Matrix) MulVec(x bitvec.BitVec) bitvec.BitVec {
	if x.Len() != m.cols {
		panic("gf2: vector width mismatch")
	}
	y := bitvec.New(len(m.rows))
	for i, r := range m.rows {
		if r.Dot(x) {
			y.Set(i, true)
		}
	}
	return y
}

// SubMatrix returns a fresh matrix consisting of rows [0, k).
func (m *Matrix) SubMatrix(k int) *Matrix {
	if k > len(m.rows) {
		panic("gf2: submatrix rows out of range")
	}
	s := NewMatrix(m.cols)
	s.rows = append(s.rows, m.rows[:k]...)
	return s
}

// SelectColumns returns a fresh matrix keeping only the columns for which
// keep[j] is true, in order. Used to restrict a hash matrix to the free
// variables of a DNF term.
func (m *Matrix) SelectColumns(keep []bool) *Matrix {
	if len(keep) != m.cols {
		panic("gf2: keep mask width mismatch")
	}
	w := 0
	for _, k := range keep {
		if k {
			w++
		}
	}
	s := NewMatrix(w)
	for _, r := range m.rows {
		nr := bitvec.New(w)
		j := 0
		for c := 0; c < m.cols; c++ {
			if keep[c] {
				if r.Get(c) {
					nr.Set(j, true)
				}
				j++
			}
		}
		s.AddRow(nr)
	}
	return s
}

// Rank computes the GF(2) rank.
func (m *Matrix) Rank() int {
	s := NewSystem(m.cols)
	for _, r := range m.rows {
		s.Add(r, false)
	}
	return s.Rank()
}
