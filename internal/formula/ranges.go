package formula

import (
	"fmt"

	"mcf0/internal/bitvec"
)

// Range is a 1-dimensional integer interval [Lo, Hi] over an n-bit universe.
type Range struct {
	Lo, Hi uint64
	Bits   int
}

// Validate checks the range is well-formed: Bits ≤ 63 and endpoints fit.
func (r Range) Validate() error {
	if r.Bits < 1 || r.Bits > 63 {
		return fmt.Errorf("formula: range bit width %d out of [1,63]", r.Bits)
	}
	max := uint64(1)<<uint(r.Bits) - 1
	if r.Lo > max || r.Hi > max {
		return fmt.Errorf("formula: range endpoints [%d,%d] exceed %d bits", r.Lo, r.Hi, r.Bits)
	}
	return nil
}

// Empty reports whether the range contains no integers.
func (r Range) Empty() bool { return r.Lo > r.Hi }

// Count returns the number of integers in the range.
func (r Range) Count() uint64 {
	if r.Empty() {
		return 0
	}
	return r.Hi - r.Lo + 1
}

// atMostDNF returns terms over variables vars (MSB first) covering exactly
// the assignments whose value is ≤ c (a len(vars)-bit value).
func atMostDNF(vars []int, c uint64) []Term {
	n := len(vars)
	var out []Term
	// One term per 1-bit of c: match c's prefix, then a 0 where c has 1.
	for i := 0; i < n; i++ {
		if c&(1<<uint(n-1-i)) == 0 {
			continue
		}
		var t Term
		for j := 0; j < i; j++ {
			t = append(t, litFor(vars[j], c&(1<<uint(n-1-j)) != 0))
		}
		t = append(t, Negl(vars[i]))
		out = append(out, t)
	}
	// Plus the equality term for c itself.
	var eq Term
	for j := 0; j < n; j++ {
		eq = append(eq, litFor(vars[j], c&(1<<uint(n-1-j)) != 0))
	}
	out = append(out, eq)
	return out
}

// atLeastDNF returns terms covering assignments with value ≥ c.
func atLeastDNF(vars []int, c uint64) []Term {
	n := len(vars)
	var out []Term
	for i := 0; i < n; i++ {
		if c&(1<<uint(n-1-i)) != 0 {
			continue
		}
		var t Term
		for j := 0; j < i; j++ {
			t = append(t, litFor(vars[j], c&(1<<uint(n-1-j)) != 0))
		}
		t = append(t, Pos(vars[i]))
		out = append(out, t)
	}
	var eq Term
	for j := 0; j < n; j++ {
		eq = append(eq, litFor(vars[j], c&(1<<uint(n-1-j)) != 0))
	}
	out = append(out, eq)
	return out
}

func litFor(v int, bit bool) Lit {
	if bit {
		return Pos(v)
	}
	return Negl(v)
}

// rangeTerms returns DNF terms over vars (MSB first) covering exactly
// [lo, hi], following Lemma 4: split at the longest common prefix. At most
// 2·len(vars) terms.
func rangeTerms(vars []int, lo, hi uint64) []Term {
	if lo > hi {
		return nil
	}
	n := len(vars)
	// Boundary cases keep cross products of per-dimension DNFs small: a
	// full-range dimension contributes the empty (always-true) term rather
	// than ~2n redundant ones, and half-bounded ranges need only one side
	// of the Lemma 4 split.
	max := uint64(1)<<uint(n) - 1
	if lo == 0 && hi == max {
		return []Term{{}}
	}
	if lo == 0 {
		return atMostDNF(vars, hi)
	}
	if hi == max {
		return atLeastDNF(vars, lo)
	}
	if lo == hi {
		var t Term
		for j := 0; j < n; j++ {
			t = append(t, litFor(vars[j], lo&(1<<uint(n-1-j)) != 0))
		}
		return []Term{t}
	}
	// Longest common prefix length ℓ; position ℓ has lo-bit 0, hi-bit 1.
	l := 0
	for l < n && (lo&(1<<uint(n-1-l)) != 0) == (hi&(1<<uint(n-1-l)) != 0) {
		l++
	}
	var prefix Term
	for j := 0; j < l; j++ {
		prefix = append(prefix, litFor(vars[j], lo&(1<<uint(n-1-j)) != 0))
	}
	suffixVars := vars[l+1:]
	mask := uint64(1)<<uint(n-l-1) - 1
	loSuf, hiSuf := lo&mask, hi&mask
	var out []Term
	if len(suffixVars) == 0 {
		// Two-point range {lo, hi} differing in the last bit.
		out = append(out,
			append(append(Term(nil), prefix...), Negl(vars[l])),
			append(append(Term(nil), prefix...), Pos(vars[l])))
		return out
	}
	for _, t := range atLeastDNF(suffixVars, loSuf) {
		full := append(append(Term(nil), prefix...), Negl(vars[l]))
		out = append(out, append(full, t...))
	}
	for _, t := range atMostDNF(suffixVars, hiSuf) {
		full := append(append(Term(nil), prefix...), Pos(vars[l]))
		out = append(out, append(full, t...))
	}
	return out
}

// RangeDNF builds the DNF for a 1-dimensional range per Lemma 4, over Bits
// variables (variable 0 is the most significant bit). At most 2·Bits terms.
func RangeDNF(r Range) (*DNF, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	vars := make([]int, r.Bits)
	for i := range vars {
		vars[i] = i
	}
	d := NewDNF(r.Bits)
	d.Terms = rangeTerms(vars, r.Lo, r.Hi)
	return d, nil
}

// MultiRange is a d-dimensional range ∏ᵢ [Loᵢ, Hiᵢ], each dimension over
// Bits bits. It represents tuples, encoded over d·Bits variables with
// dimension j occupying variables [j·Bits, (j+1)·Bits).
type MultiRange struct {
	Dims []Range
}

// Bits returns the total variable count d·n.
func (m MultiRange) Bits() int {
	total := 0
	for _, r := range m.Dims {
		total += r.Bits
	}
	return total
}

// Count returns the number of tuples in the box.
func (m MultiRange) Count() uint64 {
	c := uint64(1)
	for _, r := range m.Dims {
		c *= r.Count()
	}
	return c
}

// MultiRangeDNF builds the DNF of a d-dimensional range by distributing the
// per-dimension DNFs (Lemma 4): at most ∏ᵢ 2·Bitsᵢ ≤ (2n)^d terms.
func MultiRangeDNF(m MultiRange) (*DNF, error) {
	if len(m.Dims) == 0 {
		return nil, fmt.Errorf("formula: empty multirange")
	}
	offset := 0
	perDim := make([][]Term, len(m.Dims))
	for i, r := range m.Dims {
		if err := r.Validate(); err != nil {
			return nil, err
		}
		vars := make([]int, r.Bits)
		for j := range vars {
			vars[j] = offset + j
		}
		perDim[i] = rangeTerms(vars, r.Lo, r.Hi)
		offset += r.Bits
	}
	d := NewDNF(offset)
	// Cross product of per-dimension term lists.
	acc := []Term{{}}
	for _, terms := range perDim {
		if len(terms) == 0 {
			return d, nil // some dimension empty → empty DNF
		}
		var next []Term
		for _, a := range acc {
			for _, t := range terms {
				next = append(next, append(append(Term(nil), a...), t...))
			}
		}
		acc = next
	}
	d.Terms = acc
	return d, nil
}

// Progression is the arithmetic progression [A, A+Step, A+2·Step, …] ∩
// [A, B] with Step = 2^LogStep, over Bits bits (Corollary 1 requires
// power-of-two steps).
type Progression struct {
	A, B    uint64
	LogStep int
	Bits    int
}

// Count returns the number of elements.
func (p Progression) Count() uint64 {
	if p.A > p.B {
		return 0
	}
	return (p.B-p.A)>>uint(p.LogStep) + 1
}

// ProgressionDNF builds the DNF for a power-of-two-step arithmetic
// progression: the range DNF for [A, B] conjoined with the term fixing the
// low LogStep bits to A's (elements ≡ A mod 2^LogStep). At most 2·Bits
// terms.
func ProgressionDNF(p Progression) (*DNF, error) {
	if p.LogStep < 0 || p.LogStep >= p.Bits {
		return nil, fmt.Errorf("formula: log step %d out of range for %d bits", p.LogStep, p.Bits)
	}
	base, err := RangeDNF(Range{Lo: p.A, Hi: p.B, Bits: p.Bits})
	if err != nil {
		return nil, err
	}
	var low Term
	for i := 0; i < p.LogStep; i++ {
		v := p.Bits - 1 - i // low bit i is variable Bits-1-i
		low = append(low, litFor(v, p.A&(1<<uint(i)) != 0))
	}
	return base.ConjoinTerm(low), nil
}

// MultiProgressionDNF builds the DNF of a product of progressions,
// dimension j over its own variable block.
func MultiProgressionDNF(ps []Progression) (*DNF, error) {
	if len(ps) == 0 {
		return nil, fmt.Errorf("formula: empty progression product")
	}
	offset := 0
	acc := []Term{{}}
	total := 0
	for _, p := range ps {
		total += p.Bits
	}
	for _, p := range ps {
		d, err := ProgressionDNF(p)
		if err != nil {
			return nil, err
		}
		var next []Term
		for _, a := range acc {
			for _, t := range d.Terms {
				shifted := make(Term, len(t))
				for i, l := range t {
					shifted[i] = Lit{Var: l.Var + offset, Neg: l.Neg}
				}
				next = append(next, append(append(Term(nil), a...), shifted...))
			}
		}
		acc = next
		offset += p.Bits
	}
	d := NewDNF(total)
	d.Terms = acc
	return d, nil
}

// RangeCNF builds a CNF for a 1-dimensional range (Observation 2): the
// conjunction of "≥ Lo" and "≤ Hi" each of which is O(Bits) clauses — the
// De Morgan duals of the complement DNFs.
func RangeCNF(r Range) (*CNF, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	c := NewCNF(r.Bits)
	if r.Empty() {
		c.AddClause(Clause{}) // unsatisfiable
		return c, nil
	}
	vars := make([]int, r.Bits)
	for i := range vars {
		vars[i] = i
	}
	// x ≥ Lo  ⇔  ¬(x ≤ Lo−1): negate each term of atMostDNF(Lo−1).
	if r.Lo > 0 {
		for _, t := range atMostDNF(vars, r.Lo-1) {
			c.AddClause(negateTerm(t))
		}
	}
	// x ≤ Hi  ⇔  ¬(x ≥ Hi+1).
	if r.Hi < uint64(1)<<uint(r.Bits)-1 {
		for _, t := range atLeastDNF(vars, r.Hi+1) {
			c.AddClause(negateTerm(t))
		}
	}
	return c, nil
}

// MultiRangeCNF builds the CNF of a d-dimensional range as the conjunction
// of per-dimension CNFs — size O(n·d), contrasting with the DNF's (2n)^d
// (Observations 1 and 2).
func MultiRangeCNF(m MultiRange) (*CNF, error) {
	if len(m.Dims) == 0 {
		return nil, fmt.Errorf("formula: empty multirange")
	}
	total := m.Bits()
	c := NewCNF(total)
	offset := 0
	for _, r := range m.Dims {
		rc, err := RangeCNF(r)
		if err != nil {
			return nil, err
		}
		for _, cl := range rc.Clauses {
			shifted := make(Clause, len(cl))
			for i, l := range cl {
				shifted[i] = Lit{Var: l.Var + offset, Neg: l.Neg}
			}
			c.AddClause(shifted)
		}
		offset += r.Bits
	}
	return c, nil
}

func negateTerm(t Term) Clause {
	cl := make(Clause, len(t))
	for i, l := range t {
		cl[i] = Lit{Var: l.Var, Neg: !l.Neg}
	}
	return cl
}

// TupleToAssignment encodes a d-dimensional tuple as an assignment over the
// blocks of a MultiRange layout.
func TupleToAssignment(vals []uint64, bitsPerDim []int) bitvec.BitVec {
	total := 0
	for _, b := range bitsPerDim {
		total += b
	}
	x := bitvec.New(total)
	offset := 0
	for d, v := range vals {
		n := bitsPerDim[d]
		for i := 0; i < n; i++ {
			if v&(1<<uint(n-1-i)) != 0 {
				x.Set(offset+i, true)
			}
		}
		offset += n
	}
	return x
}
