// Package formula provides Boolean formula representations — CNF and DNF
// over variables x₀…x_{n−1} — together with evaluation, DIMACS-style I/O,
// random instance generators, and the succinct-set constructions of
// Section 5 of the paper (ranges, arithmetic progressions) as formulas.
//
// Assignments are bitvec.BitVec values of width n, where bit i is the value
// of variable i.
package formula

import (
	"fmt"
	"sort"

	"mcf0/internal/bitvec"
)

// Lit is a literal: variable Var (0-based), negated when Neg is true.
type Lit struct {
	Var int
	Neg bool
}

// Pos returns the positive literal of v.
func Pos(v int) Lit { return Lit{Var: v} }

// Negl returns the negative literal of v.
func Negl(v int) Lit { return Lit{Var: v, Neg: true} }

// Eval returns the literal's truth value under assignment x.
func (l Lit) Eval(x bitvec.BitVec) bool { return x.Get(l.Var) != l.Neg }

// String renders the literal in DIMACS style (1-based, minus for negation).
func (l Lit) String() string {
	if l.Neg {
		return fmt.Sprintf("-%d", l.Var+1)
	}
	return fmt.Sprintf("%d", l.Var+1)
}

// Term is a conjunction of literals (a DNF term).
type Term []Lit

// Eval reports whether every literal holds under x.
func (t Term) Eval(x bitvec.BitVec) bool {
	for _, l := range t {
		if !l.Eval(x) {
			return false
		}
	}
	return true
}

// Width returns the number of literals.
func (t Term) Width() int { return len(t) }

// Normalize sorts literals by variable and reports whether the term is
// consistent (no variable appears both positively and negatively).
// Duplicate literals are removed.
func (t Term) Normalize() (Term, bool) {
	s := append(Term(nil), t...)
	sort.Slice(s, func(i, j int) bool {
		if s[i].Var != s[j].Var {
			return s[i].Var < s[j].Var
		}
		return !s[i].Neg && s[j].Neg
	})
	out := s[:0]
	for i, l := range s {
		if i > 0 && s[i-1].Var == l.Var {
			if s[i-1].Neg != l.Neg {
				return nil, false // x ∧ ¬x
			}
			continue // duplicate
		}
		out = append(out, l)
	}
	return out, true
}

// Conjoin returns the conjunction of two terms, normalised; ok is false if
// they conflict.
func (t Term) Conjoin(o Term) (Term, bool) {
	merged := append(append(Term(nil), t...), o...)
	return merged.Normalize()
}

// Clause is a disjunction of literals (a CNF clause).
type Clause []Lit

// Eval reports whether at least one literal holds under x.
func (c Clause) Eval(x bitvec.BitVec) bool {
	for _, l := range c {
		if l.Eval(x) {
			return true
		}
	}
	return false
}

// DNF is a disjunction of terms over N variables. The empty DNF is false;
// a DNF containing an empty term is true.
type DNF struct {
	N     int
	Terms []Term
}

// NewDNF returns an empty (unsatisfiable) DNF over n variables.
func NewDNF(n int) *DNF { return &DNF{N: n} }

// AddTerm appends a term after validating variable ranges.
func (d *DNF) AddTerm(t Term) {
	for _, l := range t {
		if l.Var < 0 || l.Var >= d.N {
			panic(fmt.Sprintf("formula: literal variable %d out of range [0,%d)", l.Var, d.N))
		}
	}
	d.Terms = append(d.Terms, t)
}

// Eval reports whether x satisfies the DNF.
func (d *DNF) Eval(x bitvec.BitVec) bool {
	for _, t := range d.Terms {
		if t.Eval(x) {
			return true
		}
	}
	return false
}

// Size returns the number of terms (the paper's representation size).
func (d *DNF) Size() int { return len(d.Terms) }

// Or returns the disjunction of d and o (same variable count required).
func (d *DNF) Or(o *DNF) *DNF {
	if d.N != o.N {
		panic("formula: variable count mismatch")
	}
	r := NewDNF(d.N)
	r.Terms = append(append([]Term(nil), d.Terms...), o.Terms...)
	return r
}

// ConjoinTerm returns the DNF d ∧ t, distributing t into every term and
// dropping conflicting terms.
func (d *DNF) ConjoinTerm(t Term) *DNF {
	r := NewDNF(d.N)
	for _, dt := range d.Terms {
		if merged, ok := dt.Conjoin(t); ok {
			r.Terms = append(r.Terms, merged)
		}
	}
	return r
}

// CNF is a conjunction of clauses over N variables. The empty CNF is true;
// a CNF containing an empty clause is false.
type CNF struct {
	N       int
	Clauses []Clause
}

// NewCNF returns an empty (valid/true) CNF over n variables.
func NewCNF(n int) *CNF { return &CNF{N: n} }

// AddClause appends a clause after validating variable ranges.
func (c *CNF) AddClause(cl Clause) {
	for _, l := range cl {
		if l.Var < 0 || l.Var >= c.N {
			panic(fmt.Sprintf("formula: literal variable %d out of range [0,%d)", l.Var, c.N))
		}
	}
	c.Clauses = append(c.Clauses, cl)
}

// Eval reports whether x satisfies the CNF.
func (c *CNF) Eval(x bitvec.BitVec) bool {
	for _, cl := range c.Clauses {
		if !cl.Eval(x) {
			return false
		}
	}
	return true
}

// Size returns the number of clauses.
func (c *CNF) Size() int { return len(c.Clauses) }

// And returns the conjunction of c and o.
func (c *CNF) And(o *CNF) *CNF {
	if c.N != o.N {
		panic("formula: variable count mismatch")
	}
	r := NewCNF(c.N)
	r.Clauses = append(append([]Clause(nil), c.Clauses...), o.Clauses...)
	return r
}

// TermFixed returns, for a term, the per-variable fixed values it imposes:
// fixed[i] true means variable i is constrained, val bit i gives its value.
// The term must be consistent.
func TermFixed(n int, t Term) (fixed []bool, val bitvec.BitVec) {
	fixed = make([]bool, n)
	val = bitvec.New(n)
	for _, l := range t {
		fixed[l.Var] = true
		val.Set(l.Var, !l.Neg)
	}
	return fixed, val
}
