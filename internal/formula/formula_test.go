package formula

import (
	"strings"
	"testing"

	"mcf0/internal/bitvec"
	"mcf0/internal/stats"
)

func TestLitEval(t *testing.T) {
	x := bitvec.FromString("10")
	if !Pos(0).Eval(x) || Pos(1).Eval(x) {
		t.Error("positive literal evaluation wrong")
	}
	if Negl(0).Eval(x) || !Negl(1).Eval(x) {
		t.Error("negative literal evaluation wrong")
	}
	if Pos(2).String() != "3" || Negl(0).String() != "-1" {
		t.Error("literal String wrong")
	}
}

func TestTermNormalize(t *testing.T) {
	tm := Term{Pos(3), Negl(1), Pos(3)}
	norm, ok := tm.Normalize()
	if !ok || len(norm) != 2 {
		t.Fatalf("Normalize = %v, ok=%v", norm, ok)
	}
	if norm[0].Var != 1 || norm[1].Var != 3 {
		t.Fatal("Normalize not sorted")
	}
	if _, ok := (Term{Pos(2), Negl(2)}).Normalize(); ok {
		t.Fatal("contradictory term normalised")
	}
}

func TestConjoin(t *testing.T) {
	a := Term{Pos(0)}
	b := Term{Negl(1)}
	c, ok := a.Conjoin(b)
	if !ok || len(c) != 2 {
		t.Fatalf("Conjoin = %v", c)
	}
	if _, ok := a.Conjoin(Term{Negl(0)}); ok {
		t.Fatal("conflicting conjoin succeeded")
	}
}

func TestDNFCNFEval(t *testing.T) {
	// φ = (x0 ∧ ¬x1) ∨ (x2)
	d := NewDNF(3)
	d.AddTerm(Term{Pos(0), Negl(1)})
	d.AddTerm(Term{Pos(2)})
	// ψ = (x0 ∨ x2) ∧ (¬x1 ∨ x2)  — same function.
	c := NewCNF(3)
	c.AddClause(Clause{Pos(0), Pos(2)})
	c.AddClause(Clause{Negl(1), Pos(2)})
	for v := uint64(0); v < 8; v++ {
		x := bitvec.FromUint64(v, 3)
		if d.Eval(x) != c.Eval(x) {
			t.Fatalf("DNF and CNF disagree at %v", x)
		}
	}
	// Empty DNF is false; empty CNF is true; empty clause/term edge cases.
	if NewDNF(2).Eval(bitvec.New(2)) {
		t.Error("empty DNF should be false")
	}
	if !NewCNF(2).Eval(bitvec.New(2)) {
		t.Error("empty CNF should be true")
	}
	dt := NewDNF(2)
	dt.AddTerm(Term{})
	if !dt.Eval(bitvec.New(2)) {
		t.Error("DNF with empty term should be true")
	}
	cf := NewCNF(2)
	cf.AddClause(Clause{})
	if cf.Eval(bitvec.New(2)) {
		t.Error("CNF with empty clause should be false")
	}
}

func countSolutions(n int, eval func(bitvec.BitVec) bool) uint64 {
	var c uint64
	for v := uint64(0); v < 1<<uint(n); v++ {
		if eval(bitvec.FromUint64(v, n)) {
			c++
		}
	}
	return c
}

func TestDIMACSRoundTrip(t *testing.T) {
	rng := stats.NewRNG(1)
	c := RandomKCNF(10, 20, 3, rng)
	var sb strings.Builder
	if err := WriteDIMACS(&sb, c); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseDIMACS(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.N != c.N || len(parsed.Clauses) != len(c.Clauses) {
		t.Fatal("round trip changed shape")
	}
	for v := uint64(0); v < 1024; v++ {
		x := bitvec.FromUint64(v, 10)
		if parsed.Eval(x) != c.Eval(x) {
			t.Fatal("round trip changed semantics")
		}
	}
}

func TestDNFFormatRoundTrip(t *testing.T) {
	rng := stats.NewRNG(2)
	d := RandomDNF(8, 5, 3, rng)
	var sb strings.Builder
	if err := WriteDNF(&sb, d); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseDNF(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(0); v < 256; v++ {
		x := bitvec.FromUint64(v, 8)
		if parsed.Eval(x) != d.Eval(x) {
			t.Fatal("round trip changed semantics")
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                       // no header
		"p cnf 2\n1 0",           // short header
		"1 2 0\np cnf 2 1",       // literals before header
		"p cnf 2 1\n3 0",         // out-of-range literal
		"p cnf 2 2\n1 0",         // clause count mismatch
		"p cnf 2 1\nx 0",         // bad token
		"p dnf 2 1\n1 0",         // dnf header to CNF parser
		"p cnf 2 1\np cnf 2 1\n", // duplicate header
	}
	for _, s := range bad {
		if _, err := ParseDIMACS(strings.NewReader(s)); err == nil {
			t.Errorf("ParseDIMACS accepted %q", s)
		}
	}
	if _, err := ParseDNF(strings.NewReader("p cnf 2 1\n1 0")); err == nil {
		t.Error("ParseDNF accepted cnf header")
	}
}

func TestRangeDNFExhaustive(t *testing.T) {
	for bits := 1; bits <= 6; bits++ {
		max := uint64(1)<<uint(bits) - 1
		for lo := uint64(0); lo <= max; lo++ {
			for hi := lo; hi <= max; hi++ {
				r := Range{Lo: lo, Hi: hi, Bits: bits}
				d, err := RangeDNF(r)
				if err != nil {
					t.Fatal(err)
				}
				if len(d.Terms) > 2*bits {
					t.Fatalf("[%d,%d] over %d bits: %d terms > 2n", lo, hi, bits, len(d.Terms))
				}
				for v := uint64(0); v <= max; v++ {
					x := bitvec.FromUint64(v, bits)
					want := v >= lo && v <= hi
					if d.Eval(x) != want {
						t.Fatalf("[%d,%d] bits=%d: Eval(%d) = %v, want %v", lo, hi, bits, v, d.Eval(x), want)
					}
				}
			}
		}
	}
}

func TestRangeCNFExhaustive(t *testing.T) {
	for bits := 1; bits <= 5; bits++ {
		max := uint64(1)<<uint(bits) - 1
		for lo := uint64(0); lo <= max; lo++ {
			for hi := lo; hi <= max; hi++ {
				c, err := RangeCNF(Range{Lo: lo, Hi: hi, Bits: bits})
				if err != nil {
					t.Fatal(err)
				}
				for v := uint64(0); v <= max; v++ {
					x := bitvec.FromUint64(v, bits)
					want := v >= lo && v <= hi
					if c.Eval(x) != want {
						t.Fatalf("CNF [%d,%d] bits=%d: Eval(%d) = %v, want %v", lo, hi, bits, v, c.Eval(x), want)
					}
				}
			}
		}
	}
}

func TestMultiRangeDNFAndCNF(t *testing.T) {
	rng := stats.NewRNG(3)
	for trial := 0; trial < 50; trial++ {
		d := 1 + rng.Intn(3)
		var dims []Range
		for i := 0; i < d; i++ {
			bits := 2 + rng.Intn(3)
			max := uint64(1)<<uint(bits) - 1
			lo := rng.Uint64n(max + 1)
			hi := lo + rng.Uint64n(max-lo+1)
			dims = append(dims, Range{Lo: lo, Hi: hi, Bits: bits})
		}
		mr := MultiRange{Dims: dims}
		dnf, err := MultiRangeDNF(mr)
		if err != nil {
			t.Fatal(err)
		}
		cnf, err := MultiRangeCNF(mr)
		if err != nil {
			t.Fatal(err)
		}
		total := mr.Bits()
		var want uint64 = mr.Count()
		gotDNF := countSolutions(total, dnf.Eval)
		gotCNF := countSolutions(total, cnf.Eval)
		if gotDNF != want || gotCNF != want {
			t.Fatalf("dims=%v: DNF=%d CNF=%d want=%d", dims, gotDNF, gotCNF, want)
		}
	}
}

// TestObservation1Blowup verifies the witness family of Observation 1: the
// DNF for [1, 2^n−1]^d has at least n^d terms while the CNF stays O(n·d).
func TestObservation1Blowup(t *testing.T) {
	for _, tc := range []struct{ n, d int }{{4, 1}, {4, 2}, {3, 3}} {
		var dims []Range
		for i := 0; i < tc.d; i++ {
			dims = append(dims, Range{Lo: 1, Hi: uint64(1)<<uint(tc.n) - 1, Bits: tc.n})
		}
		dnf, err := MultiRangeDNF(MultiRange{Dims: dims})
		if err != nil {
			t.Fatal(err)
		}
		cnf, err := MultiRangeCNF(MultiRange{Dims: dims})
		if err != nil {
			t.Fatal(err)
		}
		minTerms := 1
		for i := 0; i < tc.d; i++ {
			minTerms *= tc.n
		}
		if dnf.Size() < minTerms {
			t.Errorf("n=%d d=%d: DNF size %d < n^d = %d", tc.n, tc.d, dnf.Size(), minTerms)
		}
		if cnf.Size() > 2*tc.n*tc.d {
			t.Errorf("n=%d d=%d: CNF size %d > 2nd", tc.n, tc.d, cnf.Size())
		}
	}
}

func TestProgressionDNF(t *testing.T) {
	rng := stats.NewRNG(4)
	for trial := 0; trial < 100; trial++ {
		bits := 3 + rng.Intn(4)
		max := uint64(1)<<uint(bits) - 1
		a := rng.Uint64n(max + 1)
		b := a + rng.Uint64n(max-a+1)
		ls := rng.Intn(bits)
		p := Progression{A: a, B: b, LogStep: ls, Bits: bits}
		d, err := ProgressionDNF(p)
		if err != nil {
			t.Fatal(err)
		}
		step := uint64(1) << uint(ls)
		var want uint64
		for v := uint64(0); v <= max; v++ {
			inAP := v >= a && v <= b && (v-a)%step == 0
			if inAP {
				want++
			}
			x := bitvec.FromUint64(v, bits)
			if d.Eval(x) != inAP {
				t.Fatalf("AP [%d,%d,%d] bits=%d: Eval(%d) = %v, want %v", a, b, step, bits, v, d.Eval(x), inAP)
			}
		}
		if want != p.Count() {
			t.Fatalf("Count() = %d, brute = %d", p.Count(), want)
		}
	}
}

func TestMultiProgressionDNF(t *testing.T) {
	ps := []Progression{
		{A: 1, B: 13, LogStep: 2, Bits: 4}, // 1,5,9,13
		{A: 0, B: 6, LogStep: 1, Bits: 3},  // 0,2,4,6
	}
	d, err := MultiProgressionDNF(ps)
	if err != nil {
		t.Fatal(err)
	}
	got := countSolutions(7, d.Eval)
	if got != 16 {
		t.Fatalf("product AP count = %d, want 16", got)
	}
	// Spot membership: (5, 4) in, (5, 3) out.
	in := TupleToAssignment([]uint64{5, 4}, []int{4, 3})
	out := TupleToAssignment([]uint64{5, 3}, []int{4, 3})
	if !d.Eval(in) || d.Eval(out) {
		t.Fatal("membership spot checks failed")
	}
}

func TestGenerators(t *testing.T) {
	rng := stats.NewRNG(5)
	c := RandomKCNF(12, 30, 3, rng)
	if c.N != 12 || len(c.Clauses) != 30 {
		t.Fatal("RandomKCNF shape wrong")
	}
	for _, cl := range c.Clauses {
		if len(cl) != 3 {
			t.Fatal("clause width wrong")
		}
		seen := map[int]bool{}
		for _, l := range cl {
			if seen[l.Var] {
				t.Fatal("duplicate variable in clause")
			}
			seen[l.Var] = true
		}
	}
	pc, witness := PlantedKCNF(12, 40, 3, rng)
	if !pc.Eval(witness) {
		t.Fatal("planted witness does not satisfy formula")
	}
	d := RandomDNF(10, 7, 4, rng)
	if d.N != 10 || len(d.Terms) != 7 {
		t.Fatal("RandomDNF shape wrong")
	}
}

func TestSingletonDNF(t *testing.T) {
	x := bitvec.FromString("1010")
	d := SingletonDNF(x)
	if got := countSolutions(4, d.Eval); got != 1 {
		t.Fatalf("singleton DNF has %d solutions", got)
	}
	if !d.Eval(x) {
		t.Fatal("singleton DNF rejects its element")
	}
}

func TestTermFixed(t *testing.T) {
	fixed, val := TermFixed(5, Term{Pos(1), Negl(3)})
	wantFixed := []bool{false, true, false, true, false}
	for i := range wantFixed {
		if fixed[i] != wantFixed[i] {
			t.Fatalf("fixed[%d] = %v", i, fixed[i])
		}
	}
	if !val.Get(1) || val.Get(3) {
		t.Fatal("TermFixed values wrong")
	}
}

func TestOrAndCombinators(t *testing.T) {
	rng := stats.NewRNG(6)
	a := RandomDNF(6, 3, 2, rng)
	b := RandomDNF(6, 4, 2, rng)
	or := a.Or(b)
	c1 := RandomKCNF(6, 3, 2, rng)
	c2 := RandomKCNF(6, 4, 2, rng)
	and := c1.And(c2)
	for v := uint64(0); v < 64; v++ {
		x := bitvec.FromUint64(v, 6)
		if or.Eval(x) != (a.Eval(x) || b.Eval(x)) {
			t.Fatal("Or semantics wrong")
		}
		if and.Eval(x) != (c1.Eval(x) && c2.Eval(x)) {
			t.Fatal("And semantics wrong")
		}
	}
}
