package formula

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseDIMACS reads a CNF in DIMACS format: a header "p cnf <vars>
// <clauses>", followed by whitespace-separated literal lists terminated by
// 0. Comment lines start with 'c'.
func ParseDIMACS(r io.Reader) (*CNF, error) {
	cnf, kind, err := parseClausal(r)
	if err != nil {
		return nil, err
	}
	if kind != "cnf" {
		return nil, fmt.Errorf("formula: expected 'p cnf' header, got 'p %s'", kind)
	}
	c := NewCNF(cnf.n)
	for _, lits := range cnf.groups {
		c.AddClause(Clause(lits))
	}
	return c, nil
}

// ParseDNF reads a DNF in the DIMACS-like convention used by DNF counters:
// header "p dnf <vars> <terms>", each line a 0-terminated list of literals
// forming one term (conjunction).
func ParseDNF(r io.Reader) (*DNF, error) {
	parsed, kind, err := parseClausal(r)
	if err != nil {
		return nil, err
	}
	if kind != "dnf" {
		return nil, fmt.Errorf("formula: expected 'p dnf' header, got 'p %s'", kind)
	}
	d := NewDNF(parsed.n)
	for _, lits := range parsed.groups {
		d.AddTerm(Term(lits))
	}
	return d, nil
}

type clausal struct {
	n      int
	groups [][]Lit
}

func parseClausal(r io.Reader) (clausal, string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var out clausal
	kind := ""
	declared := -1
	var cur []Lit
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			if kind != "" {
				return out, "", fmt.Errorf("formula: duplicate header line")
			}
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return out, "", fmt.Errorf("formula: malformed header %q", line)
			}
			kind = fields[1]
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return out, "", fmt.Errorf("formula: bad variable count %q", fields[2])
			}
			m, err := strconv.Atoi(fields[3])
			if err != nil || m < 0 {
				return out, "", fmt.Errorf("formula: bad group count %q", fields[3])
			}
			out.n = n
			declared = m
			continue
		}
		if kind == "" {
			return out, "", fmt.Errorf("formula: literals before header")
		}
		for _, tok := range strings.Fields(line) {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return out, "", fmt.Errorf("formula: bad literal %q", tok)
			}
			if v == 0 {
				out.groups = append(out.groups, cur)
				cur = nil
				continue
			}
			neg := v < 0
			if neg {
				v = -v
			}
			if v > out.n {
				return out, "", fmt.Errorf("formula: literal %d exceeds declared %d variables", v, out.n)
			}
			cur = append(cur, Lit{Var: v - 1, Neg: neg})
		}
	}
	if err := sc.Err(); err != nil {
		return out, "", err
	}
	if kind == "" {
		return out, "", fmt.Errorf("formula: missing header")
	}
	if len(cur) > 0 {
		out.groups = append(out.groups, cur)
	}
	if declared >= 0 && len(out.groups) != declared {
		return out, "", fmt.Errorf("formula: header declares %d groups, found %d", declared, len(out.groups))
	}
	return out, kind, nil
}

// WriteDIMACS serialises a CNF in DIMACS format.
func WriteDIMACS(w io.Writer, c *CNF) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p cnf %d %d\n", c.N, len(c.Clauses))
	for _, cl := range c.Clauses {
		for _, l := range cl {
			fmt.Fprintf(bw, "%s ", l)
		}
		fmt.Fprintln(bw, "0")
	}
	return bw.Flush()
}

// WriteDNF serialises a DNF in the "p dnf" convention.
func WriteDNF(w io.Writer, d *DNF) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p dnf %d %d\n", d.N, len(d.Terms))
	for _, t := range d.Terms {
		for _, l := range t {
			fmt.Fprintf(bw, "%s ", l)
		}
		fmt.Fprintln(bw, "0")
	}
	return bw.Flush()
}
