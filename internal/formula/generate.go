package formula

import (
	"mcf0/internal/bitvec"
	"mcf0/internal/stats"
)

// RandomKCNF generates a uniform random k-CNF with m clauses over n
// variables: each clause picks k distinct variables and independent signs.
func RandomKCNF(n, m, k int, rng *stats.RNG) *CNF {
	if k > n {
		panic("formula: clause width exceeds variable count")
	}
	c := NewCNF(n)
	for i := 0; i < m; i++ {
		c.AddClause(Clause(randomLits(n, k, rng)))
	}
	return c
}

// PlantedKCNF generates a random k-CNF guaranteed satisfiable: a hidden
// assignment is drawn and every clause is re-sampled until it satisfies it.
// The planted witness is returned alongside the formula.
func PlantedKCNF(n, m, k int, rng *stats.RNG) (*CNF, bitvec.BitVec) {
	witness := bitvec.Random(n, rng.Uint64)
	c := NewCNF(n)
	for i := 0; i < m; i++ {
		for {
			cl := Clause(randomLits(n, k, rng))
			if cl.Eval(witness) {
				c.AddClause(cl)
				break
			}
		}
	}
	return c, witness
}

// RandomDNF generates a DNF with k terms of the given width over n
// variables, each term picking distinct variables with independent signs.
func RandomDNF(n, k, width int, rng *stats.RNG) *DNF {
	if width > n {
		panic("formula: term width exceeds variable count")
	}
	d := NewDNF(n)
	for i := 0; i < k; i++ {
		d.AddTerm(Term(randomLits(n, width, rng)))
	}
	return d
}

func randomLits(n, k int, rng *stats.RNG) []Lit {
	// Partial Fisher-Yates over variable indices.
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	lits := make([]Lit, k)
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		perm[i], perm[j] = perm[j], perm[i]
		lits[i] = Lit{Var: perm[i], Neg: rng.Bool()}
	}
	return lits
}

// SingletonDNF returns the DNF whose only solution is x — the encoding that
// embeds a plain element stream into a DNF-set stream (Section 5).
func SingletonDNF(x bitvec.BitVec) *DNF {
	d := NewDNF(x.Len())
	t := make(Term, x.Len())
	for i := 0; i < x.Len(); i++ {
		t[i] = litFor(i, x.Get(i))
	}
	d.AddTerm(t)
	return d
}
