// Package wire implements the versioned binary codec primitives shared by
// every serializable sketch in the repository. A top-level message is
//
//	magic "F0" (2 bytes) · kind (1 byte) · version (1 byte) · payload
//
// where kind identifies the structure (one byte per sketch or wrapper
// type, registered below so the space is globally unambiguous) and version
// is bumped whenever that kind's payload layout changes. Decoders reject
// unknown kinds and versions with typed errors — never a panic — so a
// newer node can refuse an older node's snapshot (and vice versa) with a
// diagnosable message instead of silently misreading state.
//
// Payloads are built from three primitives, all little-endian:
//
//   - uvarint: unsigned varint (encoding/binary layout) for counts,
//     widths, levels, and meters;
//   - word slices: a uvarint word count followed by raw 64-bit words —
//     the flat storage of bitvec.BitVec, so slab-backed sketch state
//     serializes and deserializes as straight word copies;
//   - bit vectors: a uvarint bit length followed by its ⌈len/64⌉ words.
//
// Reader is a sticky-error cursor over one message: every accessor
// validates remaining length before touching (or allocating for) the
// input, so corrupt and truncated messages surface as ErrTruncated /
// ErrCorrupt from Err or Close, and adversarial length prefixes can never
// force an allocation larger than the input itself.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"mcf0/internal/bitvec"
)

// Message kinds. The space is shared by every package with a codec so a
// snapshot's first bytes identify its type unambiguously; append new kinds,
// never renumber.
const (
	// internal/streaming sketches.
	KindBucketing      byte = 0x01
	KindMinimum        byte = 0x02
	KindEstimation     byte = 0x03
	KindFlajoletMartin byte = 0x04
	KindExactDistinct  byte = 0x05

	// internal/setstream estimators.
	KindDNFStream         byte = 0x10
	KindRangeStream       byte = 0x11
	KindProgressionStream byte = 0x12
	KindAffineStream      byte = 0x13
	KindCNFStream         byte = 0x14

	// Public mcf0 wrappers.
	KindF0            byte = 0x20
	KindDNFSetF0      byte = 0x21
	KindRangeF0       byte = 0x22
	KindProgressionF0 byte = 0x23
	KindAffineF0      byte = 0x24
)

// KindName returns a diagnostic name for a registered kind byte.
func KindName(kind byte) string {
	switch kind {
	case KindBucketing:
		return "streaming.Bucketing"
	case KindMinimum:
		return "streaming.Minimum"
	case KindEstimation:
		return "streaming.Estimation"
	case KindFlajoletMartin:
		return "streaming.FlajoletMartin"
	case KindExactDistinct:
		return "streaming.ExactDistinct"
	case KindDNFStream:
		return "setstream.DNFStream"
	case KindRangeStream:
		return "setstream.RangeStream"
	case KindProgressionStream:
		return "setstream.ProgressionStream"
	case KindAffineStream:
		return "setstream.AffineStream"
	case KindCNFStream:
		return "setstream.CNFStream"
	case KindF0:
		return "mcf0.F0"
	case KindDNFSetF0:
		return "mcf0.DNFSetF0"
	case KindRangeF0:
		return "mcf0.RangeF0"
	case KindProgressionF0:
		return "mcf0.ProgressionF0"
	case KindAffineF0:
		return "mcf0.AffineF0"
	}
	return fmt.Sprintf("unknown(0x%02x)", kind)
}

// The two magic bytes opening every top-level message.
const (
	Magic0 byte = 'F'
	Magic1 byte = '0'
)

// Typed decode failures. ErrTruncated and ErrCorrupt are sentinels (wrap
// them with context via fmt.Errorf + %w); UnknownKindError and
// VersionError carry the offending bytes.
var (
	// ErrTruncated reports input that ended before the structure it framed.
	ErrTruncated = errors.New("wire: truncated input")
	// ErrCorrupt reports input that is long enough but structurally invalid
	// (bad magic, inconsistent widths, out-of-range counts, trailing bytes).
	ErrCorrupt = errors.New("wire: corrupt input")
)

// UnknownKindError reports a message whose kind byte is not the one the
// decoder expected (or is not registered at all).
type UnknownKindError struct {
	Got  byte
	Want byte
}

func (e *UnknownKindError) Error() string {
	return fmt.Sprintf("wire: message kind %s, want %s", KindName(e.Got), KindName(e.Want))
}

// VersionError reports a message version this build does not understand.
type VersionError struct {
	Kind    byte
	Version byte
	Latest  byte
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("wire: %s snapshot version %d not supported (latest known: %d)",
		KindName(e.Kind), e.Version, e.Latest)
}

// AppendHeader opens a top-level message: magic, kind, version.
func AppendHeader(dst []byte, kind, version byte) []byte {
	return append(dst, Magic0, Magic1, kind, version)
}

// AppendUvarint appends v as an unsigned varint.
func AppendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// AppendInt appends a non-negative int as a uvarint.
func AppendInt(dst []byte, v int) []byte {
	return binary.AppendUvarint(dst, uint64(v))
}

// AppendUint64 appends a raw little-endian 64-bit word.
func AppendUint64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

// AppendWords appends a length-prefixed word slice.
func AppendWords(dst []byte, ws []uint64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ws)))
	for _, w := range ws {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	return dst
}

// AppendBitVec appends a bit vector: uvarint bit length, then its words.
func AppendBitVec(dst []byte, v bitvec.BitVec) []byte {
	dst = binary.AppendUvarint(dst, uint64(v.Len()))
	for _, w := range v.Words() {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	return dst
}

// Reader is a sticky-error decoding cursor. After any accessor trips —
// truncation, a bad length prefix — every later accessor returns zero
// values and Err reports the first failure, so decoders can run straight-
// line and check once.
type Reader struct {
	buf []byte
	pos int
	err error
}

// NewReader wraps one message.
func NewReader(data []byte) *Reader { return &Reader{buf: data} }

// Err returns the first decode failure, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.pos }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Corrupt marks the message structurally invalid with context; decoders
// call it when a value is in range for the wire type but impossible for
// the structure (e.g. a minima list that is not sorted).
func (r *Reader) Corrupt(format string, args ...any) {
	r.fail(fmt.Errorf("wire: "+format+": %w", append(args, ErrCorrupt)...))
}

// Header consumes and validates a top-level message header against the
// expected kind, returning the version byte for the caller to dispatch on
// (after checking it against its latest known version via CheckVersion).
func (r *Reader) Header(kind byte) byte {
	if r.err != nil {
		return 0
	}
	if r.Remaining() < 4 {
		r.fail(ErrTruncated)
		return 0
	}
	m0, m1 := r.buf[r.pos], r.buf[r.pos+1]
	gotKind, version := r.buf[r.pos+2], r.buf[r.pos+3]
	r.pos += 4
	if m0 != Magic0 || m1 != Magic1 {
		r.fail(fmt.Errorf("wire: bad magic %#02x%02x: %w", m0, m1, ErrCorrupt))
		return 0
	}
	if gotKind != kind {
		r.fail(&UnknownKindError{Got: gotKind, Want: kind})
		return 0
	}
	return version
}

// PeekKind returns the kind byte of the message without consuming the
// header, so dispatchers can route to the right decoder.
func (r *Reader) PeekKind() (byte, error) {
	if r.err != nil {
		return 0, r.err
	}
	if r.Remaining() < 3 {
		return 0, ErrTruncated
	}
	if r.buf[r.pos] != Magic0 || r.buf[r.pos+1] != Magic1 {
		return 0, fmt.Errorf("wire: bad magic %#02x%02x: %w", r.buf[r.pos], r.buf[r.pos+1], ErrCorrupt)
	}
	return r.buf[r.pos+2], nil
}

// CheckVersion fails the reader with a VersionError unless version ≤
// latest. Returns true when the version is acceptable.
func (r *Reader) CheckVersion(kind, version, latest byte) bool {
	if r.err != nil {
		return false
	}
	if version == 0 || version > latest {
		r.fail(&VersionError{Kind: kind, Version: version, Latest: latest})
		return false
	}
	return true
}

// Byte consumes one byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.Remaining() < 1 {
		r.fail(ErrTruncated)
		return 0
	}
	b := r.buf[r.pos]
	r.pos++
	return b
}

// Uvarint consumes an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		if n == 0 {
			r.fail(ErrTruncated)
		} else {
			r.fail(fmt.Errorf("wire: uvarint overflow: %w", ErrCorrupt))
		}
		return 0
	}
	r.pos += n
	return v
}

// Int consumes a uvarint bounded by max (inclusive), failing the reader
// with ErrCorrupt when the value exceeds it. Decoders pass the largest
// structurally sensible value, which keeps adversarial counts from
// driving loop bounds or allocation sizes.
func (r *Reader) Int(max int) int {
	v := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if v > uint64(max) {
		r.fail(fmt.Errorf("wire: count %d exceeds bound %d: %w", v, max, ErrCorrupt))
		return 0
	}
	return int(v)
}

// Uint64 consumes a raw little-endian word.
func (r *Reader) Uint64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.Remaining() < 8 {
		r.fail(ErrTruncated)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	return v
}

// Words consumes a length-prefixed word slice. The count is validated
// against the remaining input before anything is allocated.
func (r *Reader) Words() []uint64 {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.Remaining())/8 { // division, not n*8: huge counts must not wrap
		r.fail(ErrTruncated)
		return nil
	}
	ws := make([]uint64, n)
	for i := range ws {
		ws[i] = binary.LittleEndian.Uint64(r.buf[r.pos:])
		r.pos += 8
	}
	return ws
}

// BitVec consumes a bit vector bounded by maxBits, allocating its storage.
func (r *Reader) BitVec(maxBits int) bitvec.BitVec {
	nbits := r.Int(maxBits)
	if r.err != nil {
		return bitvec.BitVec{}
	}
	v := bitvec.New(nbits)
	r.bitVecWords(v)
	return v
}

// BitVecInto consumes a bit vector of exactly dst.Len() bits into dst —
// the slab-row decode path: the words land directly in the caller's flat
// storage with no intermediate allocation.
func (r *Reader) BitVecInto(dst bitvec.BitVec) {
	nbits := r.Uvarint()
	if r.err != nil {
		return
	}
	if nbits != uint64(dst.Len()) {
		r.fail(fmt.Errorf("wire: bit vector width %d, want %d: %w", nbits, dst.Len(), ErrCorrupt))
		return
	}
	r.bitVecWords(dst)
}

// bitVecWords fills dst's words from the input and validates that the
// excess high bits of the final word are zero (the bitvec invariant every
// comparison relies on).
func (r *Reader) bitVecWords(dst bitvec.BitVec) {
	words := dst.Words()
	if r.Remaining() < len(words)*8 {
		r.fail(ErrTruncated)
		return
	}
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(r.buf[r.pos:])
		r.pos += 8
	}
	if n := dst.Len(); n%64 != 0 && len(words) > 0 {
		if words[len(words)-1]>>(uint(n)%64) != 0 {
			r.fail(fmt.Errorf("wire: bit vector has excess bits set: %w", ErrCorrupt))
		}
	}
}

// Close reports the reader's final state: its first error if any, or
// ErrCorrupt when the message carries unread trailing bytes.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("wire: %d trailing bytes: %w", r.Remaining(), ErrCorrupt)
	}
	return nil
}
