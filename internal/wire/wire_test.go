package wire

import (
	"errors"
	"strings"
	"testing"

	"mcf0/internal/bitvec"
)

// TestHeaderRoundTrip: AppendHeader → Header hands back the version and
// leaves the cursor at the payload.
func TestHeaderRoundTrip(t *testing.T) {
	buf := AppendHeader(nil, KindF0, 3)
	buf = append(buf, 0xaa)
	r := NewReader(buf)
	if v := r.Header(KindF0); v != 3 {
		t.Fatalf("version %d, want 3", v)
	}
	if b := r.Byte(); b != 0xaa {
		t.Fatalf("payload byte %#x", b)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestHeaderRejections: short input, bad magic, and kind mismatch each
// surface as their typed error.
func TestHeaderRejections(t *testing.T) {
	for _, short := range [][]byte{nil, {Magic0}, {Magic0, Magic1, KindF0}} {
		r := NewReader(short)
		r.Header(KindF0)
		if !errors.Is(r.Err(), ErrTruncated) {
			t.Errorf("len %d: err %v, want ErrTruncated", len(short), r.Err())
		}
	}

	r := NewReader([]byte{'X', '0', KindF0, 1})
	r.Header(KindF0)
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("bad magic: %v, want ErrCorrupt", r.Err())
	}

	r = NewReader(AppendHeader(nil, KindMinimum, 1))
	r.Header(KindBucketing)
	var uk *UnknownKindError
	if !errors.As(r.Err(), &uk) || uk.Got != KindMinimum || uk.Want != KindBucketing {
		t.Fatalf("kind mismatch: %v", r.Err())
	}
	if msg := uk.Error(); !strings.Contains(msg, "streaming.Minimum") || !strings.Contains(msg, "streaming.Bucketing") {
		t.Fatalf("kind names missing from %q", msg)
	}
}

// TestPeekKind: routing reads the kind without consuming it.
func TestPeekKind(t *testing.T) {
	buf := AppendHeader(nil, KindDNFStream, 2)
	r := NewReader(buf)
	if k, err := r.PeekKind(); err != nil || k != KindDNFStream {
		t.Fatalf("peek: %v %v", k, err)
	}
	// Peek does not consume: Header still succeeds.
	if v := r.Header(KindDNFStream); v != 2 || r.Err() != nil {
		t.Fatalf("header after peek: %d %v", v, r.Err())
	}
	if _, err := NewReader([]byte{Magic0, Magic1}).PeekKind(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short peek: %v", err)
	}
	if _, err := NewReader([]byte{'x', 'y', 0}).PeekKind(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad-magic peek: %v", err)
	}
}

// TestCheckVersion: version 0 and versions beyond latest fail with a
// VersionError carrying the offending bytes.
func TestCheckVersion(t *testing.T) {
	r := NewReader(nil)
	if !r.CheckVersion(KindF0, 2, 3) || r.Err() != nil {
		t.Fatal("in-range version rejected")
	}
	for _, bad := range []byte{0, 4, 255} {
		r := NewReader(nil)
		if r.CheckVersion(KindF0, bad, 3) {
			t.Fatalf("version %d accepted", bad)
		}
		var ve *VersionError
		if !errors.As(r.Err(), &ve) || ve.Version != bad || ve.Latest != 3 || ve.Kind != KindF0 {
			t.Fatalf("version %d: err %v", bad, r.Err())
		}
	}
}

// TestPrimitiveRoundTrips: every Append* reads back through its Reader
// accessor, and Close accepts the fully-consumed message.
func TestPrimitiveRoundTrips(t *testing.T) {
	v := bitvec.New(70)
	v.Set(0, true)
	v.Set(64, true)
	v.Set(69, true)

	var buf []byte
	buf = AppendUvarint(buf, 0)
	buf = AppendUvarint(buf, 1<<63)
	buf = AppendInt(buf, 12345)
	buf = AppendUint64(buf, 0xdeadbeefcafef00d)
	buf = AppendWords(buf, []uint64{7, 8, 9})
	buf = AppendWords(buf, nil)
	buf = AppendBitVec(buf, v)
	buf = append(buf, 0x42)

	r := NewReader(buf)
	if got := r.Uvarint(); got != 0 {
		t.Fatalf("uvarint 0: %d", got)
	}
	if got := r.Uvarint(); got != 1<<63 {
		t.Fatalf("uvarint 2^63: %d", got)
	}
	if got := r.Int(20000); got != 12345 {
		t.Fatalf("int: %d", got)
	}
	if got := r.Uint64(); got != 0xdeadbeefcafef00d {
		t.Fatalf("uint64: %#x", got)
	}
	ws := r.Words()
	if len(ws) != 3 || ws[0] != 7 || ws[2] != 9 {
		t.Fatalf("words: %v", ws)
	}
	if ws := r.Words(); len(ws) != 0 {
		t.Fatalf("empty words: %v", ws)
	}
	got := r.BitVec(128)
	if !got.Equal(v) {
		t.Fatalf("bitvec mismatch: %v vs %v", got, v)
	}
	if b := r.Byte(); b != 0x42 || r.Err() != nil {
		t.Fatalf("trailing byte: %#x %v", b, r.Err())
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBitVecInto: the allocation-free decode path fills existing slab
// storage and rejects width mismatches.
func TestBitVecInto(t *testing.T) {
	src := bitvec.New(100)
	for _, i := range []int{0, 50, 99} {
		src.Set(i, true)
	}
	buf := AppendBitVec(nil, src)

	dst := bitvec.New(100)
	r := NewReader(buf)
	r.BitVecInto(dst)
	if r.Err() != nil || !dst.Equal(src) {
		t.Fatalf("into: %v, equal=%v", r.Err(), dst.Equal(src))
	}

	wrong := bitvec.New(99)
	r = NewReader(buf)
	r.BitVecInto(wrong)
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("width mismatch: %v", r.Err())
	}
}

// TestExcessBitsRejected: a final word with bits set beyond the vector
// length violates the bitvec invariant and must be ErrCorrupt — for both
// the allocating and the in-place decode paths.
func TestExcessBitsRejected(t *testing.T) {
	var buf []byte
	buf = AppendUvarint(buf, 3)   // 3-bit vector
	buf = AppendUint64(buf, 0xff) // bits 3..7 are excess
	r := NewReader(buf)
	r.BitVec(64)
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("BitVec excess bits: %v", r.Err())
	}
	r = NewReader(buf)
	r.BitVecInto(bitvec.New(3))
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("BitVecInto excess bits: %v", r.Err())
	}
}

// TestBoundedReads: adversarial length prefixes are rejected before any
// allocation — Int's bound, Words' remaining-length check, BitVec's
// maxBits — and truncated fixed-width reads fail cleanly.
func TestBoundedReads(t *testing.T) {
	// Int: value exceeds the structural bound.
	r := NewReader(AppendUvarint(nil, 1000))
	r.Int(999)
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("Int bound: %v", r.Err())
	}
	// Int: bound is inclusive.
	r = NewReader(AppendUvarint(nil, 999))
	if got := r.Int(999); got != 999 || r.Err() != nil {
		t.Fatalf("Int inclusive bound: %d %v", got, r.Err())
	}

	// Words: count claims far more than the input holds; must not allocate.
	r = NewReader(AppendUvarint(nil, 1<<40))
	if ws := r.Words(); ws != nil || !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("Words overclaim: %v %v", ws, r.Err())
	}
	// Words: count * 8 overflow guard — n so large n*8 wraps.
	r = NewReader(AppendUvarint(nil, 1<<61))
	if ws := r.Words(); ws != nil || r.Err() == nil {
		t.Fatalf("Words overflow count: %v %v", ws, r.Err())
	}

	// BitVec: bit length beyond maxBits.
	r = NewReader(AppendUvarint(nil, 4096))
	r.BitVec(1024)
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("BitVec maxBits: %v", r.Err())
	}
	// BitVec: valid length but missing words.
	r = NewReader(AppendUvarint(nil, 128))
	r.BitVec(1024)
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("BitVec truncated words: %v", r.Err())
	}

	// Uint64 and Byte on short input.
	r = NewReader([]byte{1, 2, 3})
	r.Uint64()
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("Uint64 short: %v", r.Err())
	}
	r = NewReader(nil)
	r.Byte()
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("Byte empty: %v", r.Err())
	}
}

// TestUvarintFailures: truncated and overlong varints are distinguished.
func TestUvarintFailures(t *testing.T) {
	// All continuation bits, then the input ends.
	r := NewReader([]byte{0x80, 0x80})
	r.Uvarint()
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("truncated uvarint: %v", r.Err())
	}
	// 11 bytes of continuation: overflow, corrupt rather than truncated.
	over := make([]byte, 11)
	for i := range over {
		over[i] = 0x80
	}
	over[10] = 0x02
	r = NewReader(over)
	r.Uvarint()
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("overlong uvarint: %v", r.Err())
	}
}

// TestStickyError: after the first failure every accessor returns zero
// values without advancing, Err keeps reporting the first failure, and
// Close returns it too.
func TestStickyError(t *testing.T) {
	buf := AppendUint64(AppendHeader(nil, KindF0, 1), 77)
	r := NewReader(buf)
	r.Header(KindMinimum) // wrong kind: first failure
	first := r.Err()
	if first == nil {
		t.Fatal("no error recorded")
	}
	pos := r.Remaining()
	if b := r.Byte(); b != 0 {
		t.Fatalf("Byte after error: %#x", b)
	}
	if v := r.Uvarint(); v != 0 {
		t.Fatalf("Uvarint after error: %d", v)
	}
	if v := r.Uint64(); v != 0 {
		t.Fatalf("Uint64 after error: %d", v)
	}
	if ws := r.Words(); ws != nil {
		t.Fatalf("Words after error: %v", ws)
	}
	if v := r.BitVec(64); v.Len() != 0 {
		t.Fatalf("BitVec after error: %v", v)
	}
	if _, err := r.PeekKind(); err != first {
		t.Fatalf("PeekKind after error: %v", err)
	}
	if r.CheckVersion(KindF0, 1, 1) {
		t.Fatal("CheckVersion true after error")
	}
	if r.Remaining() != pos {
		t.Fatal("accessor advanced the cursor after the error")
	}
	if r.Err() != first || r.Close() != first {
		t.Fatalf("first error not sticky: Err=%v Close=%v", r.Err(), r.Close())
	}
}

// TestCloseTrailingBytes: a structurally valid message with unread bytes
// is rejected at Close, naming the count.
func TestCloseTrailingBytes(t *testing.T) {
	buf := AppendUvarint(AppendHeader(nil, KindF0, 1), 5)
	buf = append(buf, 0xde, 0xad)
	r := NewReader(buf)
	r.Header(KindF0)
	r.Uvarint()
	err := r.Close()
	if !errors.Is(err, ErrCorrupt) || !strings.Contains(err.Error(), "2 trailing bytes") {
		t.Fatalf("trailing bytes: %v", err)
	}
}

// TestCorrupt: the decoder-side escape hatch wraps ErrCorrupt with
// context and is sticky like every other failure.
func TestCorrupt(t *testing.T) {
	r := NewReader([]byte{9})
	r.Corrupt("minima not sorted at %d", 4)
	err := r.Err()
	if !errors.Is(err, ErrCorrupt) || !strings.Contains(err.Error(), "minima not sorted at 4") {
		t.Fatalf("Corrupt: %v", err)
	}
	r.Corrupt("second failure")
	if r.Err() != err {
		t.Fatal("Corrupt overwrote the first error")
	}
}

// TestKindName: every registered kind has a diagnostic name; unknown
// bytes render their hex.
func TestKindName(t *testing.T) {
	kinds := []byte{KindBucketing, KindMinimum, KindEstimation, KindFlajoletMartin,
		KindExactDistinct, KindDNFStream, KindRangeStream, KindProgressionStream,
		KindAffineStream, KindCNFStream, KindF0, KindDNFSetF0, KindRangeF0,
		KindProgressionF0, KindAffineF0}
	seen := map[string]bool{}
	for _, k := range kinds {
		name := KindName(k)
		if strings.HasPrefix(name, "unknown") {
			t.Errorf("kind %#02x unnamed", k)
		}
		if seen[name] {
			t.Errorf("kind name %q duplicated", name)
		}
		seen[name] = true
	}
	if got := KindName(0xEE); got != "unknown(0xee)" {
		t.Errorf("unknown kind name %q", got)
	}
}
