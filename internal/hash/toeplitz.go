// Carry-less-multiply evaluation path for the Toeplitz family.
//
// A Toeplitz matrix is constant along diagonals: row i of A is the
// length-n window of the diagonal string diag at offset m−1−i, so
//
//	(A·x)_i = ⊕_j diag[m−1−i+j]·x_j.
//
// Writing D^R for the reversal of diag (D^R[t] = diag[m+n−2−t]) and
// viewing both D^R and x as polynomials over GF(2) (bit t ↔ coefficient
// of z^t, the packed layout of bitvec.BitVec.Words), the sum above is a
// polynomial-multiplication coefficient:
//
//	(A·x)_i = coefficient n−1+i of D^R(z)·X(z).
//
// Evaluating h(x) = Ax+b therefore costs one carry-less multiply of
// ⌈(m+n−1)/64⌉ × ⌈n/64⌉ words (gf2poly.ClmulAccInto) plus a window
// extraction and the affine XOR — O((n/64)·((m+n)/64)) word operations
// instead of m per-row dot products.
//
// The kernel is attached to the *Linear a Toeplitz draw returns; the
// matrix A is still materialised because the model counters consume rows
// as XOR constraints (ZeroPrefixSystem and friends). Draws consume
// exactly the same randomness as the window-based construction and the
// kernel realizes bit-identical functions, so fixed-seed estimates are
// unchanged everywhere downstream (regression-tested).

package hash

import (
	"math/bits"

	"mcf0/internal/bitvec"
	"mcf0/internal/gf2poly"
)

// toepMaxWords bounds the stack-allocated product buffer of the generic
// evaluation path. Kernels attach only when the full product —
// ⌈(m+n−1)/64⌉ + ⌈n/64⌉ words — fits; wider draws (m+n ≳ 450) keep the
// per-row path, which the counting layers (the only users of such widths)
// drive through XOR-constraint systems rather than EvalInto anyway.
const toepMaxWords = 8

// toepKernel is the packed-polynomial representation of one Toeplitz
// draw. It is immutable after construction and carries no scratch, so a
// Linear with a kernel stays safe for concurrent EvalInto calls.
type toepKernel struct {
	n, m int
	// dr is the reversed diagonal D^R packed little-endian:
	// bit t = diag[m+n−2−t], ⌈(m+n−1)/64⌉ words.
	dr []uint64
	// mask clears the excess high bits of the last output word.
	mask uint64
	// bu is b in integer form (Uint64Hash convention) when m ≤ 64.
	bu uint64
}

// newToepKernel packs the diagonal of a Toeplitz draw, or returns nil
// when the evaluation buffers would not fit toepMaxWords.
func newToepKernel(n, m int, diag, b bitvec.BitVec) *toepKernel {
	if n < 1 || m < 1 {
		return nil
	}
	if (m+n-1+63)/64+(n+63)/64 > toepMaxWords {
		return nil
	}
	k := &toepKernel{n: n, m: m, dr: diag.Reverse().Words()}
	k.finish(b)
	return k
}

func (k *toepKernel) finish(b bitvec.BitVec) {
	if tail := uint(k.m) % 64; tail != 0 {
		k.mask = 1<<tail - 1
	} else {
		k.mask = ^uint64(0)
	}
	if k.m <= 64 {
		k.bu = b.Uint64()
	}
}

// prefix returns the kernel of the m′-row slice h_{m′}. Rows 0..m′−1 read
// diagonal positions [m−m′, m+n−2], which are exactly the low m′+n−1 bits
// of the reversed diagonal — a truncation, not a recomputation.
func (k *toepKernel) prefix(mp int, b bitvec.BitVec) *toepKernel {
	if mp < 1 {
		return nil
	}
	nb := mp + k.n - 1
	p := &toepKernel{n: k.n, m: mp, dr: append([]uint64(nil), k.dr[:(nb+63)/64]...)}
	if tail := uint(nb) % 64; tail != 0 {
		p.dr[len(p.dr)-1] &= 1<<tail - 1
	}
	p.finish(b)
	return p
}

// evalInto computes Ax+b into dst via the carry-less multiply: the
// product D^R·X, the m-bit window at offset n−1, then the affine XOR —
// all fused, allocation-free, and without touching kernel state.
func (k *toepKernel) evalInto(x, dst, b bitvec.BitVec) {
	if x.Len() != k.n {
		panic("gf2: vector width mismatch")
	}
	if dst.Len() != k.m {
		panic("gf2: destination width mismatch")
	}
	xw := x.Words()
	dr := k.dr
	if len(xw) == 1 && len(dr) <= 2 {
		// n ≤ 64 and m+n−1 ≤ 128: the product fits three words and the
		// m-bit window at offset n−1 spans at most two of them.
		p1, p0 := gf2poly.Clmul64(dr[0], xw[0])
		var p2 uint64
		if len(dr) == 2 {
			h2, l2 := gf2poly.Clmul64(dr[1], xw[0])
			p1 ^= l2
			p2 = h2
		}
		off := uint(k.n - 1)
		dw := dst.Words()
		bw := b.Words()
		w := p0>>off | p1<<(64-off) // off = 0 shifts by 64: zero, by Go spec
		if len(dw) == 1 {
			dw[0] = w&k.mask ^ bw[0]
			return
		}
		dw[0] = w ^ bw[0]
		dw[1] = (p1>>off|p2<<(64-off))&k.mask ^ bw[1]
		return
	}
	var buf [toepMaxWords]uint64
	prod := buf[:len(dr)+len(xw)]
	gf2poly.ClmulAccInto(prod, dr, xw)
	bitvec.WindowFromWords(prod, k.n-1, dst)
	dst.XorInPlace(b)
}

// evalUint64 is the integer-form evaluation (Uint64Hash convention);
// callers guarantee n ≤ 64 and m ≤ 64, so the product fits two words.
func (k *toepKernel) evalUint64(v uint64) uint64 {
	xw := bits.Reverse64(v) >> (64 - uint(k.n))
	p1, p0 := gf2poly.Clmul64(k.dr[0], xw)
	if len(k.dr) == 2 {
		_, l2 := gf2poly.Clmul64(k.dr[1], xw)
		p1 ^= l2
	}
	off := uint(k.n - 1)
	w := (p0>>off | p1<<(64-off)) & k.mask
	return bits.Reverse64(w)>>(64-uint(k.m)) ^ k.bu
}

// linearU64 adapts a *Linear with InBits, OutBits ≤ 64 to the Uint64Hash
// interface: the Toeplitz carry-less kernel when one is attached, a
// single-word row sweep otherwise. Stateless and safe for concurrent use.
type linearU64 struct {
	l  *Linear
	bu uint64
}

// EvalUint64 implements Uint64Hash.
func (u *linearU64) EvalUint64(v uint64) uint64 {
	l := u.l
	if k := l.toep; k != nil {
		return k.evalUint64(v)
	}
	xw := bits.Reverse64(v) >> (64 - uint(l.A.Cols()))
	var y uint64
	for i, m := 0, l.A.Rows(); i < m; i++ {
		y = y<<1 | uint64(bits.OnesCount64(l.A.Row(i).Words()[0]&xw)&1)
	}
	return y ^ u.bu
}

// AsUint64Hash returns an integer-form evaluator for h when one exists:
// h itself if it already implements Uint64Hash (the polynomial family),
// or a zero-allocation adapter for any *Linear over a ≤64-bit universe
// with ≤64 output bits. The returned evaluator realizes exactly the same
// function as h (EvalUint64's integer convention mirrors Eval bit for
// bit), so switching a call site onto it never changes estimates.
func AsUint64Hash(h Func) (Uint64Hash, bool) {
	if u, ok := h.(Uint64Hash); ok {
		return u, true
	}
	if l, ok := h.(*Linear); ok && l.InBits() >= 1 && l.InBits() <= 64 && l.OutBits() <= 64 {
		return &linearU64{l: l, bu: l.B.Uint64()}, true
	}
	return nil, false
}
