// Wire codec for hash draws. A sketch snapshot must carry its hash
// functions — not just seeds — so that a sketch decoded on another node is
// Merge-compatible with one built locally: the structural-hash
// precondition (sameLinear / sameFunc in the consuming packages) is
// checked against the decoded Ax+b / coefficient vector, exactly as it is
// for in-process clones.
//
// Three function layouts exist on the wire:
//
//   - Toeplitz (kind 2): the n+m−1 diagonal bits plus the m offset bits —
//     the Θ(n+m) representation the family is prized for. The decoder
//     re-materialises the matrix rows (windows of the diagonal) and the
//     carry-less-multiply kernel exactly as Toeplitz.Draw does, so the
//     decoded function is structurally and behaviourally identical to the
//     original draw.
//   - General linear (kind 1): the full m×n matrix row by row plus the
//     offset. Used for H_xor, H_sparse draws, and Toeplitz draws too wide
//     to carry a kernel (their diagonal is no longer retained).
//   - Polynomial (kind 3): the s coefficient words over GF(2^n).
//
// Function blobs are nested structures: they carry a kind byte but no
// magic/version of their own — the enclosing sketch message's version
// governs them.
package hash

import (
	"sync"

	"mcf0/internal/bitvec"
	"mcf0/internal/gf2"
	"mcf0/internal/gf2poly"
	"mcf0/internal/wire"
)

// Nested function-blob kinds.
const (
	funcKindLinear   byte = 1
	funcKindToeplitz byte = 2
	funcKindPoly     byte = 3
)

// maxHashBits bounds decoded hash dimensions; the widest draws in the
// repository are 3n ≤ 192 bits, so 1<<16 is generous while keeping corrupt
// counts from sizing allocations.
const maxHashBits = 1 << 16

// AppendFunc appends the wire form of a hash draw. Every function the
// families in this package produce is supported; foreign Func
// implementations make the reader-free form return false.
func AppendFunc(dst []byte, f Func) ([]byte, bool) {
	switch h := f.(type) {
	case *Linear:
		return appendLinear(dst, h), true
	case *polyFunc:
		dst = append(dst, funcKindPoly)
		dst = wire.AppendInt(dst, h.n)
		return wire.AppendWords(dst, h.coeffs), true
	}
	return dst, false
}

func appendLinear(dst []byte, l *Linear) []byte {
	if k := l.toep; k != nil {
		// The kernel retains the reversed diagonal; undo the reversal to
		// recover the draw's diagonal string.
		dst = append(dst, funcKindToeplitz)
		dst = wire.AppendInt(dst, k.m)
		dst = wire.AppendInt(dst, k.n)
		rev := bitvec.New(k.m + k.n - 1)
		copy(rev.Words(), k.dr)
		dst = wire.AppendBitVec(dst, rev.Reverse())
		return wire.AppendBitVec(dst, l.B)
	}
	dst = append(dst, funcKindLinear)
	dst = wire.AppendInt(dst, l.A.Rows())
	dst = wire.AppendInt(dst, l.A.Cols())
	for i := 0; i < l.A.Rows(); i++ {
		dst = wire.AppendBitVec(dst, l.A.Row(i))
	}
	return wire.AppendBitVec(dst, l.B)
}

// fieldCache shares one GF(2^n) field per width across decoded polynomial
// functions (a snapshot holds t·Thresh of them, all over the same field).
var fieldCache struct {
	sync.Mutex
	fields [65]*gf2poly.Field
}

func cachedField(n int) *gf2poly.Field {
	fieldCache.Lock()
	defer fieldCache.Unlock()
	if fieldCache.fields[n] == nil {
		fieldCache.fields[n] = gf2poly.NewField(n)
	}
	return fieldCache.fields[n]
}

// DecodeFunc consumes one function blob. On corrupt or truncated input it
// returns a zero Func and leaves the failure in the reader.
func DecodeFunc(r *wire.Reader) Func {
	switch kind := r.Byte(); kind {
	case funcKindToeplitz:
		m := r.Int(maxHashBits)
		n := r.Int(maxHashBits)
		if r.Err() != nil {
			return nil
		}
		if m < 1 || n < 1 {
			r.Corrupt("toeplitz draw with empty dimension %dx%d", m, n)
			return nil
		}
		diag := bitvec.New(m + n - 1)
		r.BitVecInto(diag)
		b := bitvec.New(m)
		r.BitVecInto(b)
		if r.Err() != nil {
			return nil
		}
		a, rows := gf2.NewSlabMatrix(m, n)
		for i := 0; i < m; i++ {
			diag.WindowInto(m-1-i, rows[i])
		}
		l := NewLinear(a, b)
		l.toep = newToepKernel(n, m, diag, b)
		return l
	case funcKindLinear:
		m := r.Int(maxHashBits)
		n := r.Int(maxHashBits)
		if r.Err() != nil {
			return nil
		}
		if m < 1 || n < 1 {
			r.Corrupt("linear draw with empty dimension %dx%d", m, n)
			return nil
		}
		a, rows := gf2.NewSlabMatrix(m, n)
		for i := 0; i < m; i++ {
			r.BitVecInto(rows[i])
		}
		b := bitvec.New(m)
		r.BitVecInto(b)
		if r.Err() != nil {
			return nil
		}
		return NewLinear(a, b)
	case funcKindPoly:
		n := r.Int(64)
		coeffs := r.Words()
		if r.Err() != nil {
			return nil
		}
		if n < 1 || len(coeffs) < 1 {
			r.Corrupt("polynomial draw with empty dimension n=%d s=%d", n, len(coeffs))
			return nil
		}
		mask := ^uint64(0)
		if n < 64 {
			mask = 1<<uint(n) - 1
		}
		for _, c := range coeffs {
			if c&^mask != 0 {
				r.Corrupt("polynomial coefficient exceeds field width %d", n)
				return nil
			}
		}
		return &polyFunc{n: n, field: cachedField(n), coeffs: coeffs}
	default:
		if r.Err() == nil {
			r.Corrupt("unknown hash function kind %#02x", kind)
		}
		return nil
	}
}

// DecodeLinear consumes a function blob that must be a linear draw.
func DecodeLinear(r *wire.Reader) *Linear {
	f := DecodeFunc(r)
	if r.Err() != nil {
		return nil
	}
	l, ok := f.(*Linear)
	if !ok {
		r.Corrupt("expected a linear hash draw")
		return nil
	}
	return l
}
