package hash

import (
	"math/rand"
	"testing"

	"mcf0/internal/bitvec"
)

// enumerateToeplitz visits every function of H_Toeplitz(n, m) exactly once.
func enumerateToeplitz(n, m int, visit func(Func)) {
	diagBits := n + m - 1
	for d := uint64(0); d < 1<<uint(diagBits); d++ {
		for b := uint64(0); b < 1<<uint(m); b++ {
			vals := []uint64{d, b}
			i := 0
			f := NewToeplitz(n, m).Draw(func() uint64 { v := vals[i]; i++; return v })
			visit(f)
		}
	}
}

// TestToeplitzExactlyPairwiseIndependent verifies the 2-wise independence
// property of Definition 1 *exactly* by enumerating the whole family for a
// small (n, m).
func TestToeplitzExactlyPairwiseIndependent(t *testing.T) {
	n, m := 3, 2
	total := 0
	// counts[x1][x2][a1][a2]
	counts := map[[4]uint64]int{}
	enumerateToeplitz(n, m, func(f Func) {
		total++
		for x1 := uint64(0); x1 < 1<<uint(n); x1++ {
			for x2 := uint64(0); x2 < 1<<uint(n); x2++ {
				if x1 == x2 {
					continue
				}
				a1 := f.Eval(bitvec.FromUint64(x1, n)).Uint64()
				a2 := f.Eval(bitvec.FromUint64(x2, n)).Uint64()
				counts[[4]uint64{x1, x2, a1, a2}]++
			}
		}
	})
	want := total / (1 << uint(2*m)) // uniform over pairs of outputs
	for x1 := uint64(0); x1 < 1<<uint(n); x1++ {
		for x2 := uint64(0); x2 < 1<<uint(n); x2++ {
			if x1 == x2 {
				continue
			}
			for a1 := uint64(0); a1 < 1<<uint(m); a1++ {
				for a2 := uint64(0); a2 < 1<<uint(m); a2++ {
					if got := counts[[4]uint64{x1, x2, a1, a2}]; got != want {
						t.Fatalf("Pr[h(%d)=%d ∧ h(%d)=%d] = %d/%d, want %d/%d",
							x1, a1, x2, a2, got, total, want, total)
					}
				}
			}
		}
	}
}

// TestPolyPairwiseIndependent enumerates all degree-1 polynomials over
// GF(2^2) and checks exact pairwise independence.
func TestPolyPairwiseIndependent(t *testing.T) {
	n, s := 2, 2
	fam := NewPoly(n, s)
	counts := map[[4]uint64]int{}
	total := 0
	for c0 := uint64(0); c0 < 4; c0++ {
		for c1 := uint64(0); c1 < 4; c1++ {
			vals := []uint64{c0, c1}
			i := 0
			f := fam.Draw(func() uint64 { v := vals[i]; i++; return v })
			total++
			for x1 := uint64(0); x1 < 4; x1++ {
				for x2 := uint64(0); x2 < 4; x2++ {
					if x1 == x2 {
						continue
					}
					a1 := f.Eval(bitvec.FromUint64(x1, n)).Uint64()
					a2 := f.Eval(bitvec.FromUint64(x2, n)).Uint64()
					counts[[4]uint64{x1, x2, a1, a2}]++
				}
			}
		}
	}
	// Degree-1 polynomials over GF(4) interpolate any pair exactly once.
	for x1 := uint64(0); x1 < 4; x1++ {
		for x2 := uint64(0); x2 < 4; x2++ {
			if x1 == x2 {
				continue
			}
			for a1 := uint64(0); a1 < 4; a1++ {
				for a2 := uint64(0); a2 < 4; a2++ {
					if got := counts[[4]uint64{x1, x2, a1, a2}]; got != 1 {
						t.Fatalf("interpolation count = %d, want 1", got)
					}
				}
			}
		}
	}
	if total != 16 {
		t.Fatalf("family size %d, want 16", total)
	}
}

func TestToeplitzStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := NewToeplitz(8, 6).Draw(rng.Uint64).(*Linear)
	// Constant along diagonals: A[i][j] == A[i+1][j+1].
	for i := 0; i < 5; i++ {
		for j := 0; j < 7; j++ {
			if f.A.Row(i).Get(j) != f.A.Row(i+1).Get(j+1) {
				t.Fatal("Toeplitz matrix not constant along diagonal")
			}
		}
	}
}

func TestPrefixSliceConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, fam := range []Family{NewToeplitz(10, 10), NewXor(10, 10)} {
		f := fam.Draw(rng.Uint64).(*Linear)
		x := bitvec.Random(10, rng.Uint64)
		full := f.Eval(x)
		for m := 0; m <= 10; m++ {
			pf := f.Prefix(m)
			if got, want := pf.Eval(x), full.Prefix(m); !got.Equal(want) {
				t.Fatalf("%s: prefix slice h_%d(x) = %v, want %v", fam.Name(), m, got, want)
			}
			if f.PrefixIsZero(x, m) != full.HasZeroPrefix(m) {
				t.Fatalf("%s: PrefixIsZero(%d) disagrees with Eval", fam.Name(), m)
			}
		}
	}
}

func TestZeroPrefixSystemMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 6
	f := NewToeplitz(n, n).Draw(rng.Uint64).(*Linear)
	for m := 0; m <= n; m++ {
		// The solution set of ZeroPrefixSystem(m) must be exactly
		// {x : h_m(x) = 0^m}.
		sys := f.ZeroPrefixSystem(m)
		got := map[string]bool{}
		sys.EnumerateSolutions(-1, func(x bitvec.BitVec) bool {
			got[x.Key()] = true
			return true
		})
		want := map[string]bool{}
		for v := uint64(0); v < 1<<uint(n); v++ {
			x := bitvec.FromUint64(v, n)
			if f.Eval(x).HasZeroPrefix(m) {
				want[x.Key()] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("m=%d: system has %d solutions, eval says %d", m, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("m=%d: solution sets differ", m)
			}
		}
	}
}

func TestPolyCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := NewPoly(16, 4).Draw(rng.Uint64)
	coeffs, ok := PolyCoefficients(f)
	if !ok || len(coeffs) != 4 {
		t.Fatalf("PolyCoefficients: ok=%v len=%d", ok, len(coeffs))
	}
	lin := NewToeplitz(4, 4).Draw(rng.Uint64)
	if _, ok := PolyCoefficients(lin); ok {
		t.Fatal("PolyCoefficients succeeded on a linear function")
	}
}

func TestFamilyMetadata(t *testing.T) {
	cases := []struct {
		fam  Family
		n, m int
		k    int
		name string
	}{
		{NewToeplitz(7, 5), 7, 5, 2, "toeplitz"},
		{NewXor(7, 5), 7, 5, 2, "xor"},
		{NewPoly(8, 6), 8, 8, 6, "poly"},
	}
	for _, c := range cases {
		if c.fam.InBits() != c.n || c.fam.OutBits() != c.m {
			t.Errorf("%s: shape %d→%d, want %d→%d", c.name, c.fam.InBits(), c.fam.OutBits(), c.n, c.m)
		}
		if c.fam.Independence() != c.k {
			t.Errorf("%s: independence %d, want %d", c.name, c.fam.Independence(), c.k)
		}
		if c.fam.Name() != c.name {
			t.Errorf("Name() = %q, want %q", c.fam.Name(), c.name)
		}
	}
}
