package hash

import (
	"fmt"
	"testing"

	"mcf0/internal/bitvec"
	"mcf0/internal/stats"
)

// slowCopy strips the carry-less kernel off a Toeplitz draw, leaving the
// per-row dot-product path over the same A and b — the reference the
// CLMUL path must match bit for bit.
func slowCopy(l *Linear) *Linear { return NewLinear(l.A, l.B) }

// probeInputs yields a structured + random set of n-bit inputs: zero,
// all-ones, single bits at the word boundaries, and random vectors.
func probeInputs(n int, rng *stats.RNG) []bitvec.BitVec {
	xs := []bitvec.BitVec{bitvec.New(n)}
	ones := bitvec.New(n)
	for i := 0; i < n; i++ {
		ones.Set(i, true)
	}
	xs = append(xs, ones)
	for _, i := range []int{0, 1, 62, 63, 64, 65, n - 2, n - 1} {
		if i < 0 || i >= n {
			continue
		}
		v := bitvec.New(n)
		v.Set(i, true)
		xs = append(xs, v)
	}
	for k := 0; k < 24; k++ {
		xs = append(xs, bitvec.Random(n, rng.Uint64))
	}
	return xs
}

// TestToeplitzClmulMatchesDotRowEdges runs the CLMUL path against the
// per-row path across the width grid straddling the word boundaries —
// n, m ∈ {1, 63, 64, 65, 127} — for EvalInto, Eval, the Uint64Hash
// adapter, and prefix slices.
func TestToeplitzClmulMatchesDotRowEdges(t *testing.T) {
	widths := []int{1, 63, 64, 65, 127}
	rng := stats.NewRNG(99)
	for _, n := range widths {
		for _, m := range widths {
			t.Run(fmt.Sprintf("n=%d/m=%d", n, m), func(t *testing.T) {
				f := NewToeplitz(n, m).Draw(rng.Uint64).(*Linear)
				if f.toep == nil {
					t.Fatalf("kernel not attached for n=%d m=%d", n, m)
				}
				slow := slowCopy(f)
				fast := bitvec.New(m)
				want := bitvec.New(m)
				u64, haveU64 := AsUint64Hash(f)
				if (n <= 64 && m <= 64) != haveU64 {
					t.Fatalf("AsUint64Hash availability = %v, want %v", haveU64, n <= 64 && m <= 64)
				}
				for _, x := range probeInputs(n, rng) {
					f.EvalInto(x, fast)
					slow.EvalInto(x, want)
					if !fast.Equal(want) {
						t.Fatalf("EvalInto(%s) = %s, want %s", x, fast, want)
					}
					if got := f.Eval(x); !got.Equal(want) {
						t.Fatalf("Eval(%s) = %s, want %s", x, got, want)
					}
					if haveU64 {
						if got, wantU := u64.EvalUint64(x.Uint64()), want.Uint64(); got != wantU {
							t.Fatalf("EvalUint64(%s) = %#x, want %#x", x, got, wantU)
						}
					}
				}
				// Prefix slices keep a (truncated) kernel and must agree too.
				for _, mp := range []int{1, m / 2, m - 1, m} {
					if mp < 1 {
						continue
					}
					pf := f.Prefix(mp)
					ps := slow.Prefix(mp)
					if mp > 0 && pf.toep == nil {
						t.Fatalf("prefix(%d) dropped the kernel", mp)
					}
					pFast := bitvec.New(mp)
					pWant := bitvec.New(mp)
					for k := 0; k < 8; k++ {
						x := bitvec.Random(n, rng.Uint64)
						pf.EvalInto(x, pFast)
						ps.EvalInto(x, pWant)
						if !pFast.Equal(pWant) {
							t.Fatalf("prefix(%d).EvalInto(%s) = %s, want %s", mp, x, pFast, pWant)
						}
					}
				}
			})
		}
	}
}

// TestToeplitzClmulMatchesWindowDraw1kSeeds quick-checks that for a
// thousand seeded draws (random small shapes), the CLMUL representation
// realizes the identical function to the window-based matrix draw.
func TestToeplitzClmulMatchesWindowDraw1kSeeds(t *testing.T) {
	for seed := uint64(1); seed <= 1000; seed++ {
		shapeRng := stats.NewRNG(seed * 0x9e3779b9)
		n := 1 + int(shapeRng.Uint64n(96))
		m := 1 + int(shapeRng.Uint64n(96))
		f := NewToeplitz(n, m).Draw(stats.NewRNG(seed).Uint64).(*Linear)
		if f.toep == nil {
			t.Fatalf("seed %d: kernel not attached for n=%d m=%d", seed, n, m)
		}
		slow := slowCopy(f)
		fast := bitvec.New(m)
		want := bitvec.New(m)
		for k := 0; k < 4; k++ {
			x := bitvec.Random(n, shapeRng.Uint64)
			f.EvalInto(x, fast)
			slow.EvalInto(x, want)
			if !fast.Equal(want) {
				t.Fatalf("seed %d n=%d m=%d: EvalInto(%s) = %s, want %s", seed, n, m, x, fast, want)
			}
		}
	}
}

// TestToeplitzWideDrawFallsBack checks that draws too wide for the stack
// product buffer quietly keep the per-row path and still evaluate
// correctly.
func TestToeplitzWideDrawFallsBack(t *testing.T) {
	rng := stats.NewRNG(7)
	n, m := 200, 400 // ⌈599/64⌉ + ⌈200/64⌉ = 14 words > toepMaxWords
	f := NewToeplitz(n, m).Draw(rng.Uint64).(*Linear)
	if f.toep != nil {
		t.Fatal("expected wide draw to skip the kernel")
	}
	x := bitvec.Random(n, rng.Uint64)
	y := f.Eval(x)
	for i := 0; i < m; i++ {
		if want := f.A.Row(i).Dot(x) != f.B.Get(i); y.Get(i) != want {
			t.Fatalf("bit %d mismatch on fallback path", i)
		}
	}
	// Large-but-attachable shapes exercise the generic stack-buffer path
	// (multi-word input and diagonal).
	n, m = 130, 180 // ⌈309/64⌉ + ⌈130/64⌉ = 8 words = toepMaxWords
	f = NewToeplitz(n, m).Draw(rng.Uint64).(*Linear)
	if f.toep == nil {
		t.Fatal("expected kernel on 8-word shape")
	}
	slow := slowCopy(f)
	fast := bitvec.New(m)
	want := bitvec.New(m)
	for _, x := range probeInputs(n, rng) {
		f.EvalInto(x, fast)
		slow.EvalInto(x, want)
		if !fast.Equal(want) {
			t.Fatalf("generic path EvalInto(%s) = %s, want %s", x, fast, want)
		}
	}
}

// TestAsUint64Hash pins the adapter contract: pass-through for native
// implementors, adapters only for ≤64-bit linear shapes, agreement with
// Eval on every family.
func TestAsUint64Hash(t *testing.T) {
	rng := stats.NewRNG(13)
	poly := NewPoly(24, 4).Draw(rng.Uint64)
	if u, ok := AsUint64Hash(poly); !ok || u != poly.(Uint64Hash) {
		t.Fatal("polynomial family must pass through unchanged")
	}
	if _, ok := AsUint64Hash(NewToeplitz(32, 96).Draw(rng.Uint64)); ok {
		t.Fatal("m > 64 must not claim an integer path")
	}
	if _, ok := AsUint64Hash(NewXor(96, 32).Draw(rng.Uint64)); ok {
		t.Fatal("n > 64 must not claim an integer path")
	}
	for _, fam := range []Family{NewToeplitz(24, 24), NewXor(24, 24), NewSparse(24, 24, 0.2)} {
		f := fam.Draw(rng.Uint64)
		u, ok := AsUint64Hash(f)
		if !ok {
			t.Fatalf("%s: expected integer path", fam.Name())
		}
		for k := 0; k < 200; k++ {
			v := rng.Uint64n(1 << 24)
			want := f.Eval(bitvec.FromUint64(v, 24)).Uint64()
			if got := u.EvalUint64(v); got != want {
				t.Fatalf("%s: EvalUint64(%#x) = %#x, want %#x", fam.Name(), v, got, want)
			}
		}
	}
}
