// Package hash implements the hash function families used throughout the
// paper: the 2-wise independent Toeplitz family H_Toeplitz(n, m), the 2-wise
// independent random-matrix family H_xor(n, m), and the s-wise independent
// polynomial family H_{s-wise}(n, n) over GF(2^n).
//
// Linear families expose their matrix form h(x) = Ax + b so that
// model-counting algorithms can turn "h_m(x) = 0^m" into XOR constraints,
// and the m-th prefix slice h_m (the first m output bits) is available as
// required by the prefix-slicing construction of Section 2 of the paper.
package hash

import (
	"mcf0/internal/bitvec"
	"mcf0/internal/gf2"
	"mcf0/internal/gf2poly"
)

// Func is a hash function h : {0,1}^n → {0,1}^m.
type Func interface {
	Eval(x bitvec.BitVec) bitvec.BitVec
	InBits() int
	OutBits() int
}

// InPlace is implemented by hash functions that can evaluate into a
// caller-owned output vector without allocating. The contract follows
// package bitvec's destination-passing rules: dst must have width
// OutBits(), is fully overwritten, must not alias x, and is never retained
// by the hash — enumeration loops allocate it once and reuse it per
// evaluation. Every family in this package returns functions implementing
// InPlace.
type InPlace interface {
	EvalInto(x, dst bitvec.BitVec)
}

// Uint64Hash is implemented by hash functions over universes of at most 64
// bits that evaluate integer-form inputs directly: EvalUint64(x) returns
// the integer whose OutBits()-bit binary representation (MSB first) equals
// Eval(bitvec.FromUint64(x, InBits())). In particular the string
// trailing-zero count of the output vector is the binary trailing-zero
// count of the returned integer (OutBits() for zero), which lets the
// Estimation sketches run without touching bit vectors at all.
type Uint64Hash interface {
	EvalUint64(x uint64) uint64
}

// EvalTrailingZeros evaluates h at x and returns the trailing-zero count of
// the output string, using scratch (caller-owned, width h.OutBits()) to
// avoid allocation when h implements InPlace.
func EvalTrailingZeros(h Func, x bitvec.BitVec, scratch bitvec.BitVec) int {
	if ip, ok := h.(InPlace); ok {
		ip.EvalInto(x, scratch)
		return scratch.TrailingZeros()
	}
	return h.Eval(x).TrailingZeros()
}

// Family is a distribution over hash functions; Draw samples one using next
// as the entropy source.
type Family interface {
	Draw(next func() uint64) Func
	InBits() int
	OutBits() int
	// Independence returns the k for which the family is k-wise
	// independent.
	Independence() int
	// Name identifies the family in benchmarks and logs.
	Name() string
}

// Linear is a hash function of the form h(x) = Ax + b over GF(2).
//
// Toeplitz draws additionally carry a packed-diagonal carry-less-multiply
// kernel (see toeplitz.go) that EvalInto dispatches to; it realizes
// exactly the same function as the matrix form, which stays materialised
// for the XOR-constraint consumers (ZeroPrefixSystem and friends).
// Linears are immutable after Draw and safe for concurrent evaluation.
type Linear struct {
	A *gf2.Matrix
	B bitvec.BitVec
	// toep, when non-nil, evaluates Ax as a GF(2) polynomial multiply
	// against the packed Toeplitz diagonal instead of per-row dot products.
	toep *toepKernel
}

// NewLinear wraps a matrix and offset as a hash function.
func NewLinear(a *gf2.Matrix, b bitvec.BitVec) *Linear {
	if b.Len() != a.Rows() {
		panic("hash: offset width must equal row count")
	}
	return &Linear{A: a, B: b}
}

// Eval returns Ax + b.
func (l *Linear) Eval(x bitvec.BitVec) bitvec.BitVec {
	y := bitvec.New(l.A.Rows())
	l.EvalInto(x, y)
	return y
}

// EvalInto computes Ax + b into dst (caller-owned, width OutBits()),
// allocation-free. Toeplitz draws take the carry-less-multiply kernel —
// O(n/64) word multiplies instead of m per-row dot products — and other
// families the row sweep; both realize the identical function.
func (l *Linear) EvalInto(x, dst bitvec.BitVec) {
	if l.toep != nil {
		l.toep.evalInto(x, dst, l.B)
		return
	}
	l.A.MulVecInto(x, dst)
	dst.XorInPlace(l.B)
}

// InBits returns n.
func (l *Linear) InBits() int { return l.A.Cols() }

// OutBits returns m.
func (l *Linear) OutBits() int { return l.A.Rows() }

// Prefix returns the m-th prefix slice h_m, consisting of the first m
// output bits: h_m(x) = A_m·x + b_m where A_m keeps the first m rows. A
// Toeplitz kernel survives the slice (the prefix reads a truncation of
// the packed diagonal).
func (l *Linear) Prefix(m int) *Linear {
	if m > l.A.Rows() {
		panic("hash: prefix longer than output")
	}
	p := &Linear{A: l.A.SubMatrix(m), B: l.B.Prefix(m)}
	if l.toep != nil {
		p.toep = l.toep.prefix(m, p.B)
	}
	return p
}

// PrefixIsZero reports whether the first m bits of h(x) are all zero,
// without materialising the full output.
func (l *Linear) PrefixIsZero(x bitvec.BitVec, m int) bool {
	for i := 0; i < m; i++ {
		if l.A.Row(i).Dot(x) != l.B.Get(i) {
			return false
		}
	}
	return true
}

// ZeroPrefixSystem returns the linear system over x expressing
// h_m(x) = 0^m, i.e. A_m·x = b_m. Model counters conjoin this with φ.
func (l *Linear) ZeroPrefixSystem(m int) *gf2.System {
	sys := gf2.NewSystem(l.A.Cols())
	for i := 0; i < m; i++ {
		sys.Add(l.A.Row(i), l.B.Get(i))
	}
	return sys
}

// PrefixEqualSystem returns the linear system expressing h_m(x) = target,
// the random-cell generalisation of ZeroPrefixSystem used by the sampler.
func (l *Linear) PrefixEqualSystem(m int, target bitvec.BitVec) *gf2.System {
	if target.Len() != m {
		panic("hash: target width must equal prefix length")
	}
	sys := gf2.NewSystem(l.A.Cols())
	for i := 0; i < m; i++ {
		sys.Add(l.A.Row(i), target.Get(i) != l.B.Get(i))
	}
	return sys
}

// SuffixZeroSystem returns the linear system over x expressing "the last t
// output bits of h(x) are zero", i.e. TrailZero(h(x)) ≥ t. For linear
// hashes the trailing-zero predicate of the Estimation/Flajolet–Martin
// algorithms is itself a set of XOR constraints.
func (l *Linear) SuffixZeroSystem(t int) *gf2.System {
	m := l.A.Rows()
	if t > m {
		panic("hash: suffix longer than output")
	}
	sys := gf2.NewSystem(l.A.Cols())
	for i := m - t; i < m; i++ {
		sys.Add(l.A.Row(i), l.B.Get(i))
	}
	return sys
}

// Toeplitz is the family H_Toeplitz(n, m): h(x) = Ax + b with A a uniformly
// random Toeplitz matrix (constant along diagonals, m+n−1 random bits) and
// b uniform. 2-wise independent; representable in Θ(n+m) bits.
type Toeplitz struct{ n, m int }

// NewToeplitz returns the Toeplitz family mapping n bits to m bits.
func NewToeplitz(n, m int) Toeplitz { return Toeplitz{n: n, m: m} }

// Draw samples a function. Row i is the length-n window of the random
// diagonal string starting at offset m-1-i, so A[i][j] = diag[m-1-i+j] —
// constant along diagonals, and a bijection between diagonal strings and
// Toeplitz matrices, so the family distribution is identical to the
// per-entry construction (which indexed the diagonal as diag[i-j+n-1]).
// Note the diagonal string maps to a *different* matrix than before, so a
// fixed seed realizes different hash functions than pre-rewrite versions;
// only the distribution, not the per-seed draw, is preserved. Each row is
// materialized with one word-parallel window copy, and the diagonal is
// retained in packed-polynomial form so EvalInto runs as a carry-less
// multiply (see toeplitz.go); the kernel and the matrix realize the same
// function, so draws stay bit-identical to the window-based construction.
func (t Toeplitz) Draw(next func() uint64) Func {
	diag := bitvec.Random(t.n+t.m-1, next)
	a, rows := gf2.NewSlabMatrix(t.m, t.n)
	for i := 0; i < t.m; i++ {
		diag.WindowInto(t.m-1-i, rows[i])
	}
	l := NewLinear(a, bitvec.Random(t.m, next))
	l.toep = newToepKernel(t.n, t.m, diag, l.B)
	return l
}

// InBits returns n.
func (t Toeplitz) InBits() int { return t.n }

// OutBits returns m.
func (t Toeplitz) OutBits() int { return t.m }

// Independence returns 2.
func (t Toeplitz) Independence() int { return 2 }

// Name returns "toeplitz".
func (t Toeplitz) Name() string { return "toeplitz" }

// Xor is the family H_xor(n, m): h(x) = Ax + b with every entry of A and b
// uniform and independent. 2-wise independent; Θ(n·m) bits of
// representation.
type Xor struct{ n, m int }

// NewXor returns the random-matrix family mapping n bits to m bits.
func NewXor(n, m int) Xor { return Xor{n: n, m: m} }

// Draw samples a function.
func (x Xor) Draw(next func() uint64) Func {
	a := gf2.RandomMatrix(x.m, x.n, next)
	return NewLinear(a, bitvec.Random(x.m, next))
}

// InBits returns n.
func (x Xor) InBits() int { return x.n }

// OutBits returns m.
func (x Xor) OutBits() int { return x.m }

// Independence returns 2.
func (x Xor) Independence() int { return 2 }

// Name returns "xor".
func (x Xor) Name() string { return "xor" }

// Sparse is the sparse-XOR family of the paper's §6 "Sparse XORs"
// direction: h(x) = Ax + b where each entry of A is 1 independently with
// probability Density (dense families use 1/2). Sparse rows make the XOR
// constraints conjoined with φ much cheaper for SAT solvers, at the price
// of losing exact pairwise independence — the Meel–Akshay line of work
// shows density Θ(log m / m) suffices for counting; this implementation
// exposes the knob for the A4 ablation.
type Sparse struct {
	n, m    int
	density float64
}

// NewSparse returns the sparse family mapping n bits to m bits with the
// given row density in (0, 1].
func NewSparse(n, m int, density float64) Sparse {
	if density <= 0 || density > 1 {
		panic("hash: sparse density must be in (0, 1]")
	}
	return Sparse{n: n, m: m, density: density}
}

// Draw samples a function. Rows that come out empty are redrawn once with
// a single random entry so no output bit is constant.
func (s Sparse) Draw(next func() uint64) Func {
	a, rows := gf2.NewSlabMatrix(s.m, s.n)
	// Threshold for "bit set" on a uniform 64-bit draw.
	limit := uint64(s.density * float64(^uint64(0)))
	for i := 0; i < s.m; i++ {
		row := rows[i]
		for j := 0; j < s.n; j++ {
			if next() <= limit {
				row.Set(j, true)
			}
		}
		if row.IsZero() {
			row.Set(int(next()%uint64(s.n)), true)
		}
	}
	return NewLinear(a, bitvec.Random(s.m, next))
}

// InBits returns n.
func (s Sparse) InBits() int { return s.n }

// OutBits returns m.
func (s Sparse) OutBits() int { return s.m }

// Independence returns 1: sparse rows are not pairwise independent; the
// family trades uniformity for solver-friendliness (§6).
func (s Sparse) Independence() int { return 1 }

// Name returns "sparse".
func (s Sparse) Name() string { return "sparse" }

// Density returns the row density.
func (s Sparse) Density() float64 { return s.density }

// Poly is the s-wise independent family H_{s-wise}(n, n): a uniformly
// random polynomial of degree < s over GF(2^n), evaluated at the input
// interpreted as a field element. Requires n ≤ 64.
type Poly struct {
	n, s  int
	field *gf2poly.Field
}

// NewPoly returns the s-wise independent polynomial family over GF(2^n).
func NewPoly(n, s int) Poly {
	if n > 64 {
		panic("hash: polynomial family requires n ≤ 64")
	}
	if s < 1 {
		panic("hash: independence must be ≥ 1")
	}
	return Poly{n: n, s: s, field: gf2poly.NewField(n)}
}

// Draw samples a function.
func (p Poly) Draw(next func() uint64) Func {
	mask := ^uint64(0)
	if p.n < 64 {
		mask = (1 << uint(p.n)) - 1
	}
	coeffs := make([]uint64, p.s)
	for i := range coeffs {
		coeffs[i] = next() & mask
	}
	return &polyFunc{n: p.n, field: p.field, coeffs: coeffs}
}

// InBits returns n.
func (p Poly) InBits() int { return p.n }

// OutBits returns n.
func (p Poly) OutBits() int { return p.n }

// Independence returns s.
func (p Poly) Independence() int { return p.s }

// Name returns "poly".
func (p Poly) Name() string { return "poly" }

type polyFunc struct {
	n      int
	field  *gf2poly.Field
	coeffs []uint64
}

func (f *polyFunc) Eval(x bitvec.BitVec) bitvec.BitVec {
	y := bitvec.New(f.n)
	f.EvalInto(x, y)
	return y
}

// EvalInto evaluates the polynomial into dst without allocating.
func (f *polyFunc) EvalInto(x, dst bitvec.BitVec) {
	if x.Len() != f.n {
		panic("hash: input width mismatch")
	}
	dst.SetUint64(f.EvalUint64(x.Uint64()))
}

// EvalUint64 evaluates the polynomial on an integer-form input; see
// Uint64Hash for the output convention.
func (f *polyFunc) EvalUint64(x uint64) uint64 {
	return f.field.EvalPoly(f.coeffs, x)
}

func (f *polyFunc) InBits() int  { return f.n }
func (f *polyFunc) OutBits() int { return f.n }

// Coefficients exposes the polynomial's coefficients (coeffs[i] multiplies
// x^i) for oracle encodings; callers must not mutate the slice.
func (f *polyFunc) Coefficients() []uint64 { return f.coeffs }

// PolyCoefficients extracts the coefficient vector from a function drawn
// from a Poly family, and reports whether f is such a function.
func PolyCoefficients(f Func) ([]uint64, bool) {
	pf, ok := f.(*polyFunc)
	if !ok {
		return nil, false
	}
	return pf.Coefficients(), true
}
