module mcf0

go 1.24
