// Wire codec for the public estimator types: every sketch wrapper
// implements encoding.BinaryMarshaler / encoding.BinaryUnmarshaler, and
// package-level Decode functions restore snapshots with an explicit
// parallelism. Snapshots round-trip *complete* state — hash draws,
// per-copy slab state, thresholds, and query meters — so a sketch decoded
// on another node (or after a restart, via cmd/f0 -snapshot/-restore) is
// Merge-compatible with a live sketch built from the same Config: the
// shared-draw precondition is enforced structurally across the wire.
//
// Format: each snapshot is one framed message ("F0" magic, kind byte,
// version byte — see internal/wire); unknown kinds and versions are
// rejected with typed errors, never a panic. Encoding is canonical, and
// decode(encode(s)) is state-identical to s: same estimates, same merge
// behaviour, bit-identical subsequent ingestion (determinism invariant 6).
package mcf0

import (
	"fmt"

	"mcf0/internal/setstream"
	"mcf0/internal/streaming"
	"mcf0/internal/wire"
)

// Public-wrapper codec versions; bump when a payload layout changes.
const (
	f0Version            byte = 1
	dnfSetF0Version      byte = 1
	rangeF0Version       byte = 1
	progressionF0Version byte = 1
	affineF0Version      byte = 1
)

// ---- F0 ----

// MarshalBinary snapshots the sketch: universe width plus the complete
// framed state of the underlying streaming sketch.
func (f *F0) MarshalBinary() ([]byte, error) {
	s, ok := f.est.(streaming.Sketch)
	if !ok {
		return nil, fmt.Errorf("mcf0: F0 estimator %T is not snapshottable", f.est)
	}
	dst := wire.AppendHeader(nil, wire.KindF0, f0Version)
	dst = wire.AppendInt(dst, f.nBits)
	out, ok := streaming.AppendSketch(dst, s)
	if !ok {
		return nil, fmt.Errorf("mcf0: F0 estimator %T is not snapshottable", f.est)
	}
	return out, nil
}

// UnmarshalBinary restores a snapshot produced by MarshalBinary,
// replacing f's state. The restored sketch uses default parallelism
// (GOMAXPROCS); use DecodeF0 to pick another level.
func (f *F0) UnmarshalBinary(data []byte) error {
	dec, err := DecodeF0(data, 0)
	if err != nil {
		return err
	}
	*f = *dec
	return nil
}

// DecodeF0 restores an F0 snapshot. parallelism bounds the restored
// sketch's worker pool as Config.Parallelism would (0 selects GOMAXPROCS;
// estimates are bit-identical at every level).
func DecodeF0(data []byte, parallelism int) (*F0, error) {
	r := wire.NewReader(data)
	f := decodeF0From(r, parallelism)
	if err := r.Close(); err != nil {
		return nil, err
	}
	return f, nil
}

func decodeF0From(r *wire.Reader, parallelism int) *F0 {
	v := r.Header(wire.KindF0)
	if !r.CheckVersion(wire.KindF0, v, f0Version) {
		return nil
	}
	nBits := r.Int(64)
	if r.Err() != nil {
		return nil
	}
	if nBits < 1 {
		r.Corrupt("F0 snapshot over empty universe")
		return nil
	}
	s := streaming.DecodeSketchFrom(r, parallelism)
	if r.Err() != nil {
		return nil
	}
	if got := streaming.SketchBits(s); got != nBits {
		r.Corrupt("F0 snapshot is %d bits wide but carries a %d-bit sketch", nBits, got)
		return nil
	}
	return &F0{nBits: nBits, est: s}
}

// ---- ConcurrentF0 ----

// Snapshot returns a point-in-time F0 holding the merged state of every
// replica; it shares no mutable state with c, so it can be marshaled,
// merged, or queried while concurrent ingestion continues.
func (c *ConcurrentF0) Snapshot() *F0 {
	return &F0{nBits: c.nBits, est: c.front.MergedClone()}
}

// MarshalBinary snapshots the merged replica state as an F0 message —
// crash recovery for the concurrent front rides the same wire format.
func (c *ConcurrentF0) MarshalBinary() ([]byte, error) {
	return c.Snapshot().MarshalBinary()
}

// DecodeConcurrentF0 restores an F0 snapshot (from F0.MarshalBinary or
// ConcurrentF0.MarshalBinary) into a concurrent front with the given
// replica count (≤ 0 selects GOMAXPROCS): the decoded sketch becomes
// replica 0 and is cloned into the others, exactly as NewConcurrentF0
// seeds a fresh front.
func DecodeConcurrentF0(data []byte, replicas int) (*ConcurrentF0, error) {
	// Replicas ingest serially on the claiming goroutine (see
	// NewConcurrentF0), so the restored sketch gets parallelism 1.
	f, err := DecodeF0(data, 1)
	if err != nil {
		return nil, err
	}
	return &ConcurrentF0{
		nBits: f.nBits,
		front: streaming.NewConcurrent(f.est.(streaming.Sketch), replicas),
	}, nil
}

// ---- DNFSetF0 ----

// MarshalBinary snapshots the DNF-set-stream sketch.
func (d *DNFSetF0) MarshalBinary() ([]byte, error) {
	dst := wire.AppendHeader(nil, wire.KindDNFSetF0, dnfSetF0Version)
	return d.inner.AppendBinary(dst), nil
}

// UnmarshalBinary restores a snapshot produced by MarshalBinary,
// replacing d's state (default parallelism; see DecodeDNFSetF0).
func (d *DNFSetF0) UnmarshalBinary(data []byte) error {
	dec, err := DecodeDNFSetF0(data, 0)
	if err != nil {
		return err
	}
	*d = *dec
	return nil
}

// DecodeDNFSetF0 restores a DNFSetF0 snapshot with the given parallelism.
func DecodeDNFSetF0(data []byte, parallelism int) (*DNFSetF0, error) {
	r := wire.NewReader(data)
	v := r.Header(wire.KindDNFSetF0)
	r.CheckVersion(wire.KindDNFSetF0, v, dnfSetF0Version)
	inner := setstream.DecodeDNFStreamFrom(r, parallelism)
	if err := r.Close(); err != nil {
		return nil, err
	}
	return &DNFSetF0{n: inner.N(), inner: inner}, nil
}

// ---- RangeF0 ----

// MarshalBinary snapshots the range-stream sketch.
func (r *RangeF0) MarshalBinary() ([]byte, error) {
	dst := wire.AppendHeader(nil, wire.KindRangeF0, rangeF0Version)
	return r.inner.AppendBinary(dst), nil
}

// UnmarshalBinary restores a snapshot produced by MarshalBinary,
// replacing r's state (default parallelism; see DecodeRangeF0).
func (r *RangeF0) UnmarshalBinary(data []byte) error {
	dec, err := DecodeRangeF0(data, 0)
	if err != nil {
		return err
	}
	*r = *dec
	return nil
}

// DecodeRangeF0 restores a RangeF0 snapshot with the given parallelism.
func DecodeRangeF0(data []byte, parallelism int) (*RangeF0, error) {
	r := wire.NewReader(data)
	v := r.Header(wire.KindRangeF0)
	r.CheckVersion(wire.KindRangeF0, v, rangeF0Version)
	inner := setstream.DecodeRangeStreamFrom(r, parallelism)
	if err := r.Close(); err != nil {
		return nil, err
	}
	return &RangeF0{inner: inner, bits: inner.Dims()}, nil
}

// ---- ProgressionF0 ----

// MarshalBinary snapshots the progression-stream sketch.
func (p *ProgressionF0) MarshalBinary() ([]byte, error) {
	dst := wire.AppendHeader(nil, wire.KindProgressionF0, progressionF0Version)
	return p.inner.AppendBinary(dst), nil
}

// UnmarshalBinary restores a snapshot produced by MarshalBinary,
// replacing p's state (default parallelism; see DecodeProgressionF0).
func (p *ProgressionF0) UnmarshalBinary(data []byte) error {
	dec, err := DecodeProgressionF0(data, 0)
	if err != nil {
		return err
	}
	*p = *dec
	return nil
}

// DecodeProgressionF0 restores a ProgressionF0 snapshot with the given
// parallelism.
func DecodeProgressionF0(data []byte, parallelism int) (*ProgressionF0, error) {
	r := wire.NewReader(data)
	v := r.Header(wire.KindProgressionF0)
	r.CheckVersion(wire.KindProgressionF0, v, progressionF0Version)
	inner := setstream.DecodeProgressionStreamFrom(r, parallelism)
	if err := r.Close(); err != nil {
		return nil, err
	}
	return &ProgressionF0{inner: inner, bits: inner.Dims()}, nil
}

// ---- AffineF0 ----

// MarshalBinary snapshots the affine-stream sketch.
func (a *AffineF0) MarshalBinary() ([]byte, error) {
	dst := wire.AppendHeader(nil, wire.KindAffineF0, affineF0Version)
	return a.inner.AppendBinary(dst), nil
}

// UnmarshalBinary restores a snapshot produced by MarshalBinary,
// replacing a's state (default parallelism; see DecodeAffineF0).
func (a *AffineF0) UnmarshalBinary(data []byte) error {
	dec, err := DecodeAffineF0(data, 0)
	if err != nil {
		return err
	}
	*a = *dec
	return nil
}

// DecodeAffineF0 restores an AffineF0 snapshot with the given parallelism.
func DecodeAffineF0(data []byte, parallelism int) (*AffineF0, error) {
	r := wire.NewReader(data)
	v := r.Header(wire.KindAffineF0)
	r.CheckVersion(wire.KindAffineF0, v, affineF0Version)
	inner := setstream.DecodeAffineStreamFrom(r, parallelism)
	if err := r.Close(); err != nil {
		return nil, err
	}
	return &AffineF0{n: inner.N(), inner: inner}, nil
}

// SnapshotKind reports the human-readable kind of a snapshot's first
// bytes ("mcf0.F0", "mcf0.RangeF0", …) without decoding it — cmd/f0 uses
// it to diagnose restoring a snapshot into the wrong mode.
func SnapshotKind(data []byte) (string, error) {
	kind, err := wire.NewReader(data).PeekKind()
	if err != nil {
		return "", err
	}
	return wire.KindName(kind), nil
}
